package nullcheck

import (
	"fmt"

	"trapnull/internal/arch"
	"trapnull/internal/cfg"
	"trapnull/internal/ir"
)

// CheckGuards verifies the safety invariant of every legal configuration: at
// each dereference, the base variable is guarded — proven non-null by a
// dominating explicit check, allocation, non-null branch edge or receiver
// fact — or the instruction itself is a marked exception site whose trap the
// model guarantees, or it is a legally speculated read. It returns an error
// describing the first violation.
//
// The AIXIllegalImplicit configuration intentionally violates this (the
// paper runs it "purely for experimental purpose"); every other pipeline is
// tested against this checker.
func CheckGuards(f *ir.Func, m *arch.Model) error {
	res := nonNullAnalysis(f, nil)
	for _, b := range cfg.ReversePostorderWithHandlers(f) {
		cur := res.In(b).Copy()
		for _, in := range b.Instrs {
			if sa, ok := in.SlotAccessInfo(); ok {
				switch {
				case cur.Has(int(sa.Base)):
					// Guarded by an earlier fact.
				case in.ExcSite && in.ExcVar == sa.Base && m.TrapsForAccess(sa):
					// Implicit check: the trap is guaranteed and marked.
				case in.Speculated && !sa.IsWrite && m.SpeculativeReads:
					// Legal speculation: a null read cannot trap here.
				default:
					return fmt.Errorf("%s: %s in %s: unguarded dereference of v%d",
						f.Name, in, b, sa.Base)
				}
			}
			stepNonNull(cur, in)
		}
	}
	return nil
}

// CheckProgram runs CheckGuards over every method body of a program.
func CheckProgram(p *ir.Program, m *arch.Model) error {
	for _, method := range p.Methods {
		if method.Fn == nil {
			continue
		}
		if err := CheckGuards(method.Fn, m); err != nil {
			return err
		}
	}
	return nil
}
