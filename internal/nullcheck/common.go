// Package nullcheck implements the paper's two-phase null pointer check
// optimization, the forward-analysis baseline it compares against (Whaley's
// algorithm), and a guard checker that verifies the safety invariant every
// legal configuration must preserve.
//
// Null checks are identified by their target local variable, so every
// data-flow set in this package is a bit vector over variable IDs, exactly as
// in the paper (§4).
package nullcheck

import (
	"trapnull/internal/bitset"
	"trapnull/internal/ir"
)

// Stats reports what an optimization pass did to one function.
type Stats struct {
	// Eliminated counts null check instructions removed because the target
	// was proven non-null (phase 1 / Whaley) or substitutable (phase 2).
	Eliminated int
	// Inserted counts re-materialized checks (motion insertion points).
	Inserted int
	// Implicit counts checks converted to hardware-trap exception sites.
	Implicit int
	// ExplicitRemaining counts checks left as real instructions.
	ExplicitRemaining int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Eliminated += other.Eliminated
	s.Inserted += other.Inserted
	s.Implicit += other.Implicit
	s.ExplicitRemaining += other.ExplicitRemaining
}

// isBarrier reports whether the instruction is a side-effect barrier for
// null check motion: it can throw an exception other than NPE, write to
// heap memory, or — inside a try region — write any local variable visible
// to the handler. This is the common component of every Kill set in §4.
func isBarrier(in *ir.Instr, inTry bool) bool {
	if in.Op == ir.OpNullCheck {
		// NPE-for-NPE reordering is explicitly permitted by the paper.
		return false
	}
	if in.CanThrowOther() || in.WritesMemory() {
		return true
	}
	if inTry && in.HasDst() {
		return true
	}
	return false
}

// overwrites returns the variable the instruction overwrites, or NoVar.
func overwrites(in *ir.Instr) ir.VarID {
	if in.HasDst() {
		return in.Dst
	}
	return ir.NoVar
}

// tryEdgeSubtract returns a full set when the edge crosses a try-region
// boundary (the paper's Edge_try), nil otherwise. The returned closure is
// shared by all four motion analyses.
func tryEdgeSubtract(size int) func(from, to *ir.Block) *bitset.Set {
	full := bitset.NewFull(size)
	return func(from, to *ir.Block) *bitset.Set {
		if from.Try != to.Try {
			return full
		}
		return nil
	}
}

// condEdgeNonNull returns the variable proven non-null on the edge from->to
// by from's terminator, or NoVar. This captures the paper's Edge rules:
// `ifnull`/`ifnonnull` (a comparison of a reference against null) and
// `instanceof-if<cond>` (a branch on an instanceof result — instanceof of
// null is false, so the instance edge proves non-nullness).
func condEdgeNonNull(from, to *ir.Block) ir.VarID {
	t := from.Terminator()
	if t == nil || t.Op != ir.OpIf {
		return ir.NoVar
	}

	// Null-literal comparison form. (The zero Operand has Kind OperVar, so
	// an explicit matched flag is required.)
	var v ir.Operand
	nullForm := false
	switch {
	case t.Args[0].IsVar() && t.Args[1].Kind == ir.OperConstNull:
		v = t.Args[0]
		nullForm = true
	case t.Args[1].IsVar() && t.Args[0].Kind == ir.OperConstNull:
		v = t.Args[1]
		nullForm = true
	}
	if nullForm {
		switch t.Cond {
		case ir.CondEQ:
			// v == null: the else edge proves non-null.
			if t.Targets[1] == to && t.Targets[0] != to {
				return v.Var
			}
		case ir.CondNE:
			// v != null: the then edge proves non-null.
			if t.Targets[0] == to && t.Targets[1] != to {
				return v.Var
			}
		}
		return ir.NoVar
	}

	// instanceof-if form: `x = instanceof v, C; if x != 0 ...` with x's
	// definition in the same block and v stable since it.
	var tested ir.VarID = ir.NoVar
	var wantTrueEdge bool
	switch {
	case t.Args[0].IsVar() && t.Args[1].Kind == ir.OperConstInt && t.Args[1].Int == 0:
		tested = t.Args[0].Var
	case t.Args[1].IsVar() && t.Args[0].Kind == ir.OperConstInt && t.Args[0].Int == 0:
		tested = t.Args[1].Var
	}
	if tested == ir.NoVar {
		return ir.NoVar
	}
	switch t.Cond {
	case ir.CondNE:
		wantTrueEdge = true // x != 0: the then edge is the instance edge
	case ir.CondEQ:
		wantTrueEdge = false // x == 0: the else edge is the instance edge
	default:
		return ir.NoVar
	}
	if wantTrueEdge {
		if t.Targets[0] != to || t.Targets[1] == to {
			return ir.NoVar
		}
	} else {
		if t.Targets[1] != to || t.Targets[0] == to {
			return ir.NoVar
		}
	}
	// Find the last definition of the tested variable in the block; it must
	// be an instanceof whose operand is not redefined afterwards.
	var ref ir.VarID = ir.NoVar
	for i := len(from.Instrs) - 2; i >= 0; i-- {
		in := from.Instrs[i]
		if in.HasDst() && in.Dst == tested {
			if in.Op == ir.OpInstanceOf && in.Args[0].IsVar() {
				ref = in.Args[0].Var
			}
			break
		}
		if ref == ir.NoVar && in.HasDst() {
			continue
		}
	}
	if ref == ir.NoVar {
		return ir.NoVar
	}
	// The reference must not be redefined between the instanceof and the
	// branch.
	seenDef := false
	for i := len(from.Instrs) - 2; i >= 0; i-- {
		in := from.Instrs[i]
		if in.HasDst() && in.Dst == tested && in.Op == ir.OpInstanceOf {
			seenDef = true
			break
		}
		if in.HasDst() && in.Dst == ref {
			return ir.NoVar
		}
	}
	if !seenDef {
		return ir.NoVar
	}
	return ref
}

// refVars returns the set of locals with reference kind; checks can only
// target these, and analyses restrict their universes accordingly.
func refVars(f *ir.Func) *bitset.Set {
	s := bitset.New(f.NumLocals())
	for i, l := range f.Locals {
		if l.Kind == ir.KindRef {
			s.Add(i)
		}
	}
	return s
}
