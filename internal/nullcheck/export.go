package nullcheck

import (
	"trapnull/internal/bitset"
	"trapnull/internal/ir"
)

// NonNullOut returns, for every block, the set of variables proven non-null
// at the block's exit. Scalar replacement uses it to decide whether a memory
// read may be hoisted to a loop preheader without crossing its own null
// check — the interplay the paper illustrates in Figure 4: phase 1 hoists
// the check, which is what makes the load hoistable at all.
func NonNullOut(f *ir.Func) map[*ir.Block]*bitset.Set {
	res := nonNullAnalysis(f, nil)
	out := make(map[*ir.Block]*bitset.Set, len(f.Blocks))
	for _, b := range f.Blocks {
		out[b] = res.Out(b)
	}
	return out
}
