package nullcheck

import (
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// Phase1 runs the architecture-independent optimization of §4.1: it computes
// the earliest points null checks can reach when moved backward (§4.1.1),
// eliminates checks proven non-null by the forward analysis assuming those
// insertions (§4.1.2), and materializes the surviving insertion points at
// block exits. The transformation is insert-then-prune: an original check is
// only deleted when provably covered on all incoming paths, so safety never
// depends on the insertion placement.
//
// The pass is designed to be iterated with bounds-check elimination and
// scalar replacement (Figure 2); each iteration is one Phase1 call.
func Phase1(f *ir.Func) Stats {
	size := f.NumLocals()
	// Critical edges carry the natural insertion points of guarded loops
	// (the guard→body edge is the loop preheader); split them so "insert at
	// block exit" can express those placements.
	f.SplitCriticalEdges()
	f.RecomputeEdges()

	// --- §4.1.1: backward movable-area analysis -------------------------
	scratch := bitset.New(size)
	genB, killB := dataflow.GenKill(func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		scratch.Clear()
		return scanBackwardMotion(b, size, scratch)
	})
	bwd := dataflow.Solve(f, &dataflow.Problem{
		Dir:          dataflow.Backward,
		Meet:         dataflow.Intersect,
		Size:         size,
		Gen:          genB,
		Kill:         killB,
		EdgeSubtract: tryEdgeSubtract(size),
		// Boundary at exits: nothing is anticipated after a return.
	})

	// --- Earliest(n): checks anticipated at the exit of n that no
	// predecessor anticipates at its own exit ----------------------------
	earliest := make(map[*ir.Block]*bitset.Set, len(f.Blocks))
	slab := bitset.NewSlab(len(f.Blocks), size)
	rv := refVars(f)
	for i, b := range f.Blocks {
		e := slab[i]
		e.CopyFrom(bwd.Out(b))
		for _, p := range b.Preds {
			// e ∩ ¬Out(p) is plain set difference.
			e.Subtract(bwd.Out(p))
		}
		// Only variables that actually have checks somewhere benefit from
		// insertion; Out_bwd already guarantees that, but restrict to ref
		// variables for hygiene.
		e.Intersect(rv)
		earliest[b] = e
	}

	// --- §4.1.2: forward non-null analysis assuming the insertions ------
	fwd := nonNullAnalysis(f, earliest)

	// Fate classification (observability only): the insertion-free analysis
	// distinguishes "was already redundant" from "moved up to an insertion
	// point". One extra solve, paid only when a tracker is attached.
	var plain *dataflow.Result
	if f.Track != nil {
		plain = nonNullAnalysis(f, nil)
	}

	st := Stats{}
	st.Eliminated = eliminateKnownNonNull(f, fwd, plain)

	// --- Prune and materialize insertion points -------------------------
	// Earliest(n) = Earliest(n) − Out_fwd(n): an insertion is useless where
	// the variable is already non-null at the block exit.
	arena := f.Alloc()
	for _, b := range f.Blocks {
		e := earliest[b]
		e.Subtract(fwd.Out(b))
		e.ForEach(func(v int) {
			b.InsertBeforeTerminator(arena.NewInstr(ir.Instr{
				Op:       ir.OpNullCheck,
				Dst:      ir.NoVar,
				Args:     arena.Operands(ir.Var(ir.VarID(v))),
				Reason:   ir.ReasonMoved,
				Explicit: true,
			}))
			st.Inserted++
		})
	}
	st.ExplicitRemaining = f.CountOp(ir.OpNullCheck)
	return st
}

// scanBackwardMotion computes the §4.1.1 block summaries.
//
// Gen_bwd: checks located in b that can move up to b's entry — no barrier
// and no overwrite of the target appears above them in the block.
//
// Kill_bwd: checks that cannot move up through b — the whole universe when
// the block contains a side-effect barrier, plus every overwritten variable.
// blockedAbove is caller-provided scratch, cleared on entry.
func scanBackwardMotion(b *ir.Block, size int, blockedAbove *bitset.Set) (gen, kill *bitset.Set) {
	gen, kill = bitset.NewPair(size)
	inTry := b.Try != ir.NoTry
	barrierAbove := false
	for _, in := range b.Instrs {
		if in.Op == ir.OpNullCheck {
			v := int(in.NullCheckVar())
			if !barrierAbove && !blockedAbove.Has(v) {
				gen.Add(v)
			}
			continue
		}
		if isBarrier(in, inTry) {
			barrierAbove = true
			kill.Fill()
		}
		if v := overwrites(in); v != ir.NoVar {
			blockedAbove.Add(int(v))
			kill.Add(int(v))
		}
	}
	return gen, kill
}
