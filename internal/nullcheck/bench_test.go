package nullcheck

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/workloads"
)

// benchFn returns a fresh copy of a representative hot function (the
// Assignment kernel's entry) for optimizing.
func benchFn(b *testing.B) *ir.Func {
	b.Helper()
	w, err := workloads.ByName("Assignment")
	if err != nil {
		b.Fatal(err)
	}
	_, entryM := w.Build()
	return entryM.Fn
}

// The compile-time story of Tables 4–5 hinges on the relative costs of
// these passes; the benchmarks track them directly.

func BenchmarkWhaley(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := benchFn(b)
		b.StartTimer()
		Whaley(fn)
	}
}

func BenchmarkPhase1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := benchFn(b)
		b.StartTimer()
		Phase1(fn)
	}
}

func BenchmarkPhase2(b *testing.B) {
	m := arch.IA32Win()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := benchFn(b)
		Phase1(fn)
		b.StartTimer()
		Phase2(fn, m)
	}
}

func BenchmarkConvertToTraps(b *testing.B) {
	m := arch.IA32Win()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := benchFn(b)
		Phase1(fn)
		b.StartTimer()
		ConvertToTraps(fn, m)
	}
}

func BenchmarkCheckGuards(b *testing.B) {
	m := arch.IA32Win()
	fn := benchFn(b)
	Phase1(fn)
	Phase2(fn, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckGuards(fn, m); err != nil {
			b.Fatal(err)
		}
	}
}
