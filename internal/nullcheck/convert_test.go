package nullcheck

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// TestConvertCrossBlockCoverage: a check at a block exit dissolves into a
// trapping dereference in the (post-dominating) next block — the case the
// adjacent-fold baseline cannot handle and phase 1's motion creates.
func TestConvertCrossBlockCoverage(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("cross", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	next := b.DeclareBlock("next")
	b.SetBlock(entry)
	b.NullCheck(a, ir.ReasonMoved) // e.g. hoisted here by phase 1
	b.Jump(next)
	b.SetBlock(next)
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	m := arch.IA32Win()
	removed := ConvertToTraps(f, m)
	if removed != 1 || countChecks(f) != 0 {
		t.Fatalf("removed=%d checks=%d, want 1/0:\n%s", removed, countChecks(f), f)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guards: %v", err)
	}
	// The dereference must carry the mark.
	if !next.Instrs[0].ExcSite || next.Instrs[0].ExcVar != a {
		t.Fatalf("dereference not marked:\n%s", f)
	}
}

// TestConvertBlockedByBarrier: a memory write between check and dereference
// pins the check.
func TestConvertBlockedByBarrier(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("barrier", false)
	a := b.Param("a", ir.KindRef)
	g := b.Param("g", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.NullCheck(a, ir.ReasonMoved)
	b.PutField(g, c.FieldByName("f"), ir.ConstInt(1)) // barrier (+ its own check)
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	m := arch.IA32Win()
	ConvertToTraps(f, m)
	// a's check must survive: deleting it would let the NPE fire after the
	// store to g.f became visible.
	found := false
	for _, in := range f.Entry.Instrs {
		if in.Op == ir.OpPutField {
			break
		}
		if in.Op == ir.OpNullCheck && in.NullCheckVar() == a {
			found = true
		}
	}
	if !found {
		t.Fatalf("a's check moved or vanished across the barrier:\n%s", f)
	}
}

// TestConvertBranchNeedsBothArms: with a dereference on only one arm the
// check stays (intersection), exactly the Figure 7 situation that needs
// phase 2's motion rather than pure substitution.
func TestConvertBranchNeedsBothArms(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("onearm", false)
	a := b.Param("a", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	deref := b.DeclareBlock("deref")
	skip := b.DeclareBlock("skip")
	b.SetBlock(entry)
	b.NullCheck(a, ir.ReasonInlined)
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(0), skip, deref)
	b.SetBlock(deref)
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	b.SetBlock(skip)
	b.Return(ir.Var(i))
	f := b.Finish()

	if removed := ConvertToTraps(f, arch.IA32Win()); removed != 0 {
		t.Fatalf("removed %d, want 0 (skip arm has no coverage):\n%s", removed, f)
	}
	if countChecks(f) != 1 {
		t.Fatalf("check count = %d, want 1:\n%s", countChecks(f), f)
	}
}

// TestConvertRespectsOverwrite: an overwrite of the variable between check
// and dereference pins the check (the later dereference guards a different
// value).
func TestConvertRespectsOverwrite(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("ow", false)
	a := b.Param("a", ir.KindRef)
	b2 := b.Param("b", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.NullCheck(a, ir.ReasonMoved)
	b.Move(a, ir.Var(b2)) // overwrite
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	if removed := ConvertToTraps(f, arch.IA32Win()); removed != 0 {
		t.Fatalf("removed %d across an overwrite, want 0:\n%s", removed, f)
	}
}

// TestConvertAIXWriteOnly: on the AIX model only write accesses substitute.
func TestConvertAIXWriteOnly(t *testing.T) {
	_, c := testClass()
	build := func(write bool) *ir.Func {
		b := ir.NewFunc("aix", false)
		a := b.Param("a", ir.KindRef)
		b.Result(ir.KindInt)
		b.Block("entry")
		b.NullCheck(a, ir.ReasonMoved)
		if write {
			b.Emit(&ir.Instr{Op: ir.OpPutField, Dst: ir.NoVar, Field: c.FieldByName("f"),
				Args: []ir.Operand{ir.Var(a), ir.ConstInt(1)}})
			b.Return(ir.ConstInt(0))
		} else {
			v := b.Temp(ir.KindInt)
			b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
			b.Return(ir.Var(v))
		}
		return b.Finish()
	}

	m := arch.PPCAIX()
	fw := build(true)
	if removed := ConvertToTraps(fw, m); removed != 1 {
		t.Fatalf("write: removed %d, want 1:\n%s", removed, fw)
	}
	fr := build(false)
	if removed := ConvertToTraps(fr, m); removed != 0 {
		t.Fatalf("read: removed %d, want 0 on write-only-trap model:\n%s", removed, fr)
	}
}

// TestConvertDoesNotUseSpeculatedLoads: a speculated read cannot carry a
// check (it is designed not to trap).
func TestConvertDoesNotUseSpeculatedLoads(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("specload", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.NullCheck(a, ir.ReasonMoved)
	v := b.Temp(ir.KindInt)
	ld := b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	ld.Speculated = true
	b.Return(ir.Var(v))
	f := b.Finish()

	if removed := ConvertToTraps(f, arch.IA32Win()); removed != 0 {
		t.Fatalf("check dissolved into a speculated load:\n%s", f)
	}
}

// TestFoldAdjacentRespectsNonVarBase: folding must not fire when the next
// instruction dereferences a different variable.
func TestFoldAdjacentDifferentVar(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("diff", false)
	a := b.Param("a", ir.KindRef)
	g := b.Param("g", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.NullCheck(a, ir.ReasonInlined)
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(g)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	if folded := FoldAdjacentTraps(f, arch.IA32Win()); folded != 0 {
		t.Fatalf("folded a's check into g's dereference:\n%s", f)
	}
}

// TestPhase2InsideTryRegion: checks may move within one region but the
// region's barrier semantics hold — a local write inside a try pins motion.
func TestPhase2InsideTryRegion(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("tryp2", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	tryBlk := b.Block("try")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)
	b.SetBlock(tryBlk)
	b.NullCheck(a, ir.ReasonInlined)
	x := b.Temp(ir.KindInt)
	b.Move(x, ir.ConstInt(5)) // local write in try region = barrier
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	b.SetBlock(handler)
	b.Return(ir.ConstInt(-1))
	f := b.F
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	m := arch.IA32Win()
	Phase2(f, m)
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guards: %v", err)
	}
	// The check may not move past the local write: if a is null, the
	// handler must observe x unwritten, so an explicit check must still
	// precede the write. (A benign exception-site mark may also exist on
	// the dereference — over-marking is documented ConvertToTraps
	// behaviour — but it never fires because the check throws first.)
	checkBeforeWrite := false
	for _, in := range tryBlk.Instrs {
		if in.HasDst() && in.Dst == x {
			break
		}
		if in.Op == ir.OpNullCheck && in.NullCheckVar() == a {
			checkBeforeWrite = true
		}
	}
	if !checkBeforeWrite {
		t.Fatalf("no explicit check precedes the try-local write:\n%s", f)
	}
}

// TestInstanceOfEdgeRule: §4.1.2's instanceof-if rule — on the edge where
// `v instanceof C` was true, v is non-null and its checks are redundant.
func TestInstanceOfEdgeRule(t *testing.T) {
	p, c := testClass()
	_ = p
	b := ir.NewFunc("iof", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	yes := b.DeclareBlock("yes")
	no := b.DeclareBlock("no")
	b.SetBlock(entry)
	tst := b.Temp(ir.KindInt)
	b.InstanceOf(tst, a, c)
	b.If(ir.CondNE, ir.Var(tst), ir.ConstInt(0), yes, no)
	b.SetBlock(yes)
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, c.FieldByName("f"))
	b.Return(ir.Var(v))
	b.SetBlock(no)
	b.Return(ir.ConstInt(-1))
	f := b.Finish()

	st := Whaley(f)
	if st.Eliminated != 1 || countChecks(f) != 0 {
		t.Fatalf("instanceof edge fact not used: %+v\n%s", st, f)
	}
	if err := CheckGuards(f, arch.IA32Win()); err != nil {
		t.Fatalf("guards: %v", err)
	}
}

// TestInstanceOfEdgeRuleEQForm: the x == 0 form proves non-null on the else
// edge.
func TestInstanceOfEdgeRuleEQForm(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("iof2", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	notInst := b.DeclareBlock("notinst")
	inst := b.DeclareBlock("inst")
	b.SetBlock(entry)
	tst := b.Temp(ir.KindInt)
	b.InstanceOf(tst, a, c)
	b.If(ir.CondEQ, ir.Var(tst), ir.ConstInt(0), notInst, inst)
	b.SetBlock(notInst)
	b.Return(ir.ConstInt(-1))
	b.SetBlock(inst)
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, c.FieldByName("f"))
	b.Return(ir.Var(v))
	f := b.Finish()

	if st := Whaley(f); st.Eliminated != 1 {
		t.Fatalf("EQ-form instanceof edge fact not used: %+v\n%s", st, f)
	}
}

// TestInstanceOfEdgeRejectedWhenRefRedefined: redefining the reference
// between the instanceof and the branch invalidates the fact.
func TestInstanceOfEdgeRejectedWhenRefRedefined(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("iof3", false)
	a := b.Param("a", ir.KindRef)
	other := b.Param("o", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	yes := b.DeclareBlock("yes")
	no := b.DeclareBlock("no")
	b.SetBlock(entry)
	tst := b.Temp(ir.KindInt)
	b.InstanceOf(tst, a, c)
	b.Move(a, ir.Var(other)) // invalidates the instanceof fact for a
	b.If(ir.CondNE, ir.Var(tst), ir.ConstInt(0), yes, no)
	b.SetBlock(yes)
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, c.FieldByName("f"))
	b.Return(ir.Var(v))
	b.SetBlock(no)
	b.Return(ir.ConstInt(-1))
	f := b.Finish()

	if st := Whaley(f); st.Eliminated != 0 {
		t.Fatalf("stale instanceof fact used after redefinition: %+v\n%s", st, f)
	}
}
