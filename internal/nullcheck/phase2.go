package nullcheck

import (
	"trapnull/internal/arch"
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// Phase2 runs the architecture-dependent optimization of §4.2 for the given
// machine model: null checks move forward to their latest points, convert to
// implicit (hardware-trap) checks where the very next dereference of the
// checked variable is guaranteed to trap, and surviving explicit checks that
// are substitutable — covered later on every path — are eliminated.
//
// Critical edges are split first; with them gone, "insert at block exit"
// expresses every placement the paper's Latest sets describe, and the
// intersection meet at merges is safe (see DESIGN.md on the union in the
// paper's formula).
func Phase2(f *ir.Func, m *arch.Model) Stats {
	return phase2(f, m, false)
}

// Phase2UnsafeSubst is Phase2 with its two all-paths safety tests
// deliberately weakened to any-path: a check moving through a block exit
// continues when SOME successor expects it (instead of every successor), and
// the final substitutable elimination runs through ConvertToTrapsAnyPath.
// Executions that take an uncovered path silently miss their
// NullPointerException — a planted miscompile that the triage tooling seeds
// (cmd/triage -inject-bug and the triage tests) to prove the bisect/shrink
// machinery finds real optimizer bugs. Never reached by a real
// configuration.
func Phase2UnsafeSubst(f *ir.Func, m *arch.Model) Stats {
	return phase2(f, m, true)
}

func phase2(f *ir.Func, m *arch.Model, unsafeAnyPath bool) Stats {
	f.SplitCriticalEdges()
	size := f.NumLocals()

	scratch := bitset.New(size)
	genF, killF := dataflow.GenKill(func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		scratch.Clear()
		return scanForwardMotion(b, size, scratch)
	})
	res := dataflow.Solve(f, &dataflow.Problem{
		Dir:          dataflow.Forward,
		Meet:         dataflow.Intersect,
		Size:         size,
		Gen:          genF,
		Kill:         killF,
		EdgeSubtract: tryEdgeSubtract(size),
		// Boundary at entry: no checks arrive from outside the function.
	})

	st := Stats{}
	for _, b := range f.Blocks {
		rewriteBlock(b, f.Alloc(), m, res, &st, unsafeAnyPath, f.Track)
	}

	st.Eliminated += peepholeImplicit(f, m)
	// §4.2.2, the substitutable elimination: a surviving explicit check
	// dissolves when a later explicit check or guaranteed trap covers it on
	// every path. ConvertToTraps is exactly that backward analysis (it also
	// marks the trapping dereferences that may now carry a deleted check),
	// and doubling as the Phase1Only lowering keeps phase 2 a strict
	// superset of it.
	substMeet := dataflow.Meet(dataflow.Intersect)
	if unsafeAnyPath {
		substMeet = dataflow.Union
	}
	st.Eliminated += convertToTraps(f, m, substMeet)
	st.ExplicitRemaining = f.CountOp(ir.OpNullCheck)
	return st
}

// scanForwardMotion computes the §4.2.1 block summaries.
//
// Gen_fwd: checks located in b that can move down to b's exit — no barrier,
// no dereference of the target, and no overwrite of the target below them.
//
// Kill: checks that cannot move down through b — everything when a barrier
// is present, plus overwritten variables, plus variables whose slot is
// dereferenced (the dereference consumes the moving check).
func scanForwardMotion(b *ir.Block, size int, blockedBelow *bitset.Set) (gen, kill *bitset.Set) {
	gen, kill = bitset.NewPair(size)
	inTry := b.Try != ir.NoTry
	barrierBelow := false
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == ir.OpNullCheck {
			v := int(in.NullCheckVar())
			if !barrierBelow && !blockedBelow.Has(v) {
				gen.Add(v)
			}
			continue
		}
		if sa, ok := in.SlotAccessInfo(); ok {
			blockedBelow.Add(int(sa.Base))
			kill.Add(int(sa.Base))
		}
		if isBarrier(in, inTry) {
			barrierBelow = true
			kill.Fill()
		}
		if v := overwrites(in); v != ir.NoVar {
			blockedBelow.Add(int(v))
			kill.Add(int(v))
		}
	}
	return gen, kill
}

// rewriteBlock applies the in-block insertion-point algorithm of §4.2.1:
// original checks dissolve into the Inner set and re-materialize at their
// latest legal points, as implicit exception-site marks when the consuming
// dereference is guaranteed to trap, as explicit check instructions
// otherwise.
//
// unsafeAnyPath weakens the block-exit safety test from "every successor
// expects the moving check" to "some successor expects it" — the planted
// Phase2UnsafeSubst miscompile.
func rewriteBlock(b *ir.Block, arena *ir.Arena, m *arch.Model, res *dataflow.Result, st *Stats, unsafeAnyPath bool, track ir.CheckTracker) {
	size := res.In(b).Len()
	inner := res.In(b).Copy()
	inTry := b.Try != ir.NoTry

	// carrier (observability only) maps each in-flight bit of inner to the
	// original check instruction that contributed it in this block, so the
	// consuming event can report the right fate. Bits flowing in from
	// predecessors have no carrier here — their originals were fated "sunk"
	// in their home blocks when they crossed the terminator.
	var carrier []*ir.Instr
	if track != nil {
		carrier = make([]*ir.Instr, size)
	}
	sunk := func(v int) {
		if carrier != nil {
			if c := carrier[v]; c != nil {
				track.Sunk(c, b)
				carrier[v] = nil
			}
		}
	}

	out := make([]*ir.Instr, 0, len(b.Instrs))
	emitExplicit := func(v int) {
		out = append(out, arena.NewInstr(ir.Instr{
			Op:       ir.OpNullCheck,
			Dst:      ir.NoVar,
			Args:     arena.Operands(ir.Var(ir.VarID(v))),
			Reason:   ir.ReasonMoved,
			Explicit: true,
		}))
		st.Inserted++
	}

	for _, in := range b.Instrs {
		if in.Op == ir.OpNullCheck {
			// The check joins the moving set; its instruction disappears
			// and will re-materialize at the latest point.
			v := int(in.NullCheckVar())
			if carrier != nil {
				if inner.Has(v) {
					// An in-flight check of the same variable already covers
					// this one; nothing new joins the moving set.
					track.Eliminated(in, b)
				} else {
					carrier[v] = in
				}
			}
			inner.Add(v)
			continue
		}
		if sa, ok := in.SlotAccessInfo(); ok && inner.Has(int(sa.Base)) {
			if m.TrapsForAccess(sa) {
				// Implicit null check: zero instructions; the dereference
				// is the exception site (§3.3.2 step 2).
				in.ExcSite = true
				in.ExcVar = sa.Base
				st.Implicit++
				if carrier != nil {
					if c := carrier[sa.Base]; c != nil {
						track.Converted(c, in, b)
						carrier[sa.Base] = nil
					}
				}
			} else {
				// The access cannot be trusted to trap (big offset, read on
				// a write-only-trap OS, dynamic array offset): the check
				// must stay explicit and precede the access.
				emitExplicit(int(sa.Base))
				sunk(int(sa.Base))
			}
			inner.Remove(int(sa.Base))
		}
		if isBarrier(in, inTry) {
			inner.ForEach(func(v int) {
				emitExplicit(v)
				sunk(v)
			})
			inner.Clear()
		} else if v := overwrites(in); v != ir.NoVar && inner.Has(int(v)) {
			emitExplicit(int(v))
			sunk(int(v))
			inner.Remove(int(v))
		}
		if in.IsTerminator() {
			// Checks still moving either continue into every successor
			// (each successor expects them: the check is in its In set) or
			// must be emitted here, before the terminator.
			pending := inner.Copy()
			pending.ForEach(func(v int) {
				continues := len(b.Succs) > 0
				if unsafeAnyPath {
					// Any-path variant: one expecting successor suffices, so
					// the check silently disappears on the others.
					continues = false
					for _, s := range b.Succs {
						if res.In(s).Has(v) {
							continues = true
							break
						}
					}
				} else {
					for _, s := range b.Succs {
						if !res.In(s).Has(v) {
							continues = false
							break
						}
					}
				}
				if !continues {
					emitExplicit(v)
				}
				// Whether re-emitted here or continuing into the successors'
				// In sets, the original check moved past its old position.
				sunk(v)
			})
			inner = bitset.New(size)
		}
		out = append(out, in)
	}
	b.Instrs = out
}

// peepholeImplicit converts an explicit check whose target's first following
// event within the block is a guaranteed-trapping dereference into an
// implicit check on that dereference. Phase 2's barrier flushes can leave
// such pairs behind (check emitted at a memory write, dereference right
// after); the paper's §4.2.2 Gen set covers them by treating trapping
// accesses as substitution points, and the marking here keeps the trap
// translatable into a precise NPE.
func peepholeImplicit(f *ir.Func, m *arch.Model) int {
	removed := 0
	for _, b := range f.Blocks {
		inTry := b.Try != ir.NoTry
		kept := b.Instrs[:0]
		for idx, in := range b.Instrs {
			if in.Op != ir.OpNullCheck {
				kept = append(kept, in)
				continue
			}
			v := in.NullCheckVar()
			consumed := false
			var trapCarrier *ir.Instr
		scan:
			for _, later := range b.Instrs[idx+1:] {
				if later.Op == ir.OpNullCheck {
					if later.NullCheckVar() == v {
						// A later identical check covers this one.
						consumed = true
					}
					break scan
				}
				if sa, ok := later.SlotAccessInfo(); ok && sa.Base == v {
					if m.TrapsForAccess(sa) {
						if !later.ExcSite {
							later.ExcSite = true
							later.ExcVar = v
						}
						if later.ExcVar == v {
							consumed = true
							trapCarrier = later
						}
					}
					break scan
				}
				if isBarrier(later, inTry) || overwrites(later) == v {
					break scan
				}
			}
			if consumed {
				removed++
				if t := f.Track; t != nil {
					if trapCarrier != nil {
						t.Converted(in, trapCarrier, b)
					} else {
						t.Eliminated(in, b)
					}
				}
			} else {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	return removed
}

// FoldAdjacentTraps implements the pre-paper implicit-check lowering used by
// the baseline configurations (§2.1): a null check is folded into the
// hardware trap only when the immediately following instruction is a
// guaranteed-trapping dereference of the same variable. Returns the number
// of checks folded.
func FoldAdjacentTraps(f *ir.Func, m *arch.Model) int {
	folded := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for idx, in := range b.Instrs {
			if in.Op == ir.OpNullCheck && idx+1 < len(b.Instrs) {
				next := b.Instrs[idx+1]
				if sa, ok := next.SlotAccessInfo(); ok && sa.Base == in.NullCheckVar() && m.TrapsForAccess(sa) {
					if !next.ExcSite {
						next.ExcSite = true
						next.ExcVar = sa.Base
					}
					if next.ExcVar == sa.Base {
						folded++
						if t := f.Track; t != nil {
							t.Converted(in, next, b)
						}
						continue
					}
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return folded
}
