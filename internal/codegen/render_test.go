package codegen

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/workloads"
)

// TestRenderEveryOpcode lowers a function touching every opcode family and
// checks each line renders non-trivially.
func TestRenderEveryOpcode(t *testing.T) {
	p := ir.NewProgram("all")
	cls := p.NewClass("C", &ir.Field{Name: "f", Kind: ir.KindInt})
	cb := ir.NewFunc("callee", true)
	cb.Param("this", ir.KindRef)
	cb.Block("entry")
	cb.ReturnVoid()
	calleeFn := cb.Finish()
	meth := p.AddMethod(cls, "m", calleeFn, true)
	static := p.AddMethod(nil, "s", calleeFn, false)

	b := ir.NewFunc("omni", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	x := b.Param("x", ir.KindFloat)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	tgt := b.DeclareBlock("tgt")
	other := b.DeclareBlock("other")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)

	i := b.Temp(ir.KindInt)
	fv := b.Temp(ir.KindFloat)
	r := b.Temp(ir.KindRef)
	arr := b.Temp(ir.KindRef)
	b.Move(i, ir.ConstInt(1))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.Var(n))
	b.Binop(ir.OpDiv, i, ir.Var(i), ir.ConstInt(3))
	b.Unop(ir.OpNeg, i, ir.Var(i))
	b.Binop(ir.OpFMul, fv, ir.Var(x), ir.ConstFloat(2))
	b.Unop(ir.OpIntToFloat, fv, ir.Var(i))
	b.Cmp(i, ir.CondLT, ir.Var(n), ir.ConstInt(4))
	b.Math(ir.MathSqrt, fv, ir.Var(x))
	b.New(r, cls)
	b.NewArray(arr, ir.ConstInt(4))
	b.GetField(i, a, cls.FieldByName("f"))
	b.PutField(a, cls.FieldByName("f"), ir.Var(i))
	b.ArrayLength(i, arr)
	b.ArrayLoad(i, arr, ir.ConstInt(0))
	b.ArrayStore(arr, ir.ConstInt(0), ir.Var(i))
	b.CallVirtual(ir.NoVar, meth, a)
	b.CallStatic(ir.NoVar, static, ir.Var(a))
	b.If(ir.CondNE, ir.Var(i), ir.ConstInt(0), tgt, other)
	b.SetBlock(tgt)
	b.Jump(other)
	b.SetBlock(other)
	b.Return(ir.Var(i))
	b.SetBlock(handler)
	b.Throw(exc)
	f := b.F
	region := f.NewRegion(handler, exc)
	entry.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	for _, m := range []*arch.Model{arch.IA32Win(), arch.PPCAIX()} {
		l := Lower(f, m)
		s := l.String()
		for _, want := range []string{"load", "store", "vcall", "call", "cmp/b", "jmp",
			"bounds check", "try region"} {
			if !strings.Contains(s, want) {
				t.Fatalf("%s listing missing %q:\n%s", m.Name, want, s)
			}
		}
		if len(l.Lines) != f.NumInstrs() {
			t.Fatalf("%s: %d lines for %d instrs", m.Name, len(l.Lines), f.NumInstrs())
		}
	}
}

// TestListingsForAllWorkloads: every optimized kernel lowers cleanly on both
// models, and explicit-check counts in the listing match the IR.
func TestListingsForAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		prog, entryM := w.Build()
		if _, err := jit.CompileProgram(prog, jit.ConfigPhase1Phase2(), arch.IA32Win()); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, m := range []*arch.Model{arch.IA32Win(), arch.PPCAIX()} {
			l := Lower(entryM.Fn, m)
			if l.ExplicitChecks != entryM.Fn.CountOp(ir.OpNullCheck) {
				t.Fatalf("%s/%s: listing counts %d checks, IR has %d",
					w.Name, m.Name, l.ExplicitChecks, entryM.Fn.CountOp(ir.OpNullCheck))
			}
			if l.StaticCycles <= 0 {
				t.Fatalf("%s/%s: no static cycles", w.Name, m.Name)
			}
		}
	}
}
