// Package codegen lowers optimized IR into the machine-level listing the
// simulator executes: every instruction annotated with its cycle cost on the
// target model, explicit null checks expanded to their two-instruction
// compare/branch form (or the PowerPC conditional trap), and implicit checks
// rendered as zero-cost exception-site annotations on their dereferences.
//
// The simulated machine interprets the IR directly for execution (the
// listing and the interpreter share the arch cost model), so this package's
// role is inspection and static accounting: the nulljit CLI prints listings,
// and the static cycle totals feed sanity tests that the dynamic accounting
// agrees with the per-instruction costs.
package codegen

import (
	"fmt"
	"strings"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// AsmLine is one lowered instruction.
type AsmLine struct {
	Block  *ir.Block
	Instr  *ir.Instr
	Text   string
	Cycles int64
	// ExcSite marks the line as an implicit null check exception site.
	ExcSite bool
}

// Listing is a lowered function.
type Listing struct {
	Fn    *ir.Func
	Model *arch.Model
	Lines []AsmLine
	// StaticCycles is the sum of all line costs (an upper bound on one
	// straight-line pass, not an execution estimate).
	StaticCycles int64
	// ExplicitChecks / ImplicitSites count lowered checks by kind.
	ExplicitChecks int
	ImplicitSites  int
}

// Lower produces the listing of fn for the model.
func Lower(fn *ir.Func, m *arch.Model) *Listing {
	l := &Listing{Fn: fn, Model: m}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			line := AsmLine{
				Block:   b,
				Instr:   in,
				Cycles:  m.Cost(in),
				ExcSite: in.ExcSite,
			}
			line.Text = render(in, m)
			if in.Op == ir.OpNullCheck {
				l.ExplicitChecks++
			}
			if in.ExcSite {
				l.ImplicitSites++
			}
			l.StaticCycles += line.Cycles
			l.Lines = append(l.Lines, line)
		}
	}
	return l
}

// render produces the assembly-flavoured text for one instruction.
func render(in *ir.Instr, m *arch.Model) string {
	switch in.Op {
	case ir.OpNullCheck:
		// The two lowering styles of §3.3.1 / §5.4.
		v := in.Args[0]
		if m.Name == "ppc-aix" {
			return fmt.Sprintf("tweq   %s, 0           ; explicit null check (1-cycle conditional trap)", v)
		}
		return fmt.Sprintf("cmp    %s, 0 ; je .throw_npe  ; explicit null check", v)
	case ir.OpGetField:
		s := fmt.Sprintf("load   v%d <- [%s+%d]", in.Dst, in.Args[0], in.Field.Offset)
		if in.ExcSite {
			s += "   ; implicit null check (exception site)"
		}
		if in.Speculated {
			s += "   ; speculated above its null check"
		}
		return s
	case ir.OpPutField:
		s := fmt.Sprintf("store  [%s+%d] <- %s", in.Args[0], in.Field.Offset, in.Args[1])
		if in.ExcSite {
			s += "   ; implicit null check (exception site)"
		}
		return s
	case ir.OpArrayLength:
		s := fmt.Sprintf("load   v%d <- [%s+0]        ; array length", in.Dst, in.Args[0])
		if in.ExcSite {
			s += " ; implicit null check"
		}
		if in.Speculated {
			s += " ; speculated"
		}
		return s
	case ir.OpArrayLoad:
		return fmt.Sprintf("load   v%d <- [%s+8+8*%s]", in.Dst, in.Args[0], in.Args[1])
	case ir.OpArrayStore:
		return fmt.Sprintf("store  [%s+8+8*%s] <- %s", in.Args[0], in.Args[1], in.Args[2])
	case ir.OpBoundCheck:
		return fmt.Sprintf("cmp    %s, %s ; jae .throw_oob ; bounds check", in.Args[0], in.Args[1])
	case ir.OpCallVirtual:
		s := fmt.Sprintf("vcall  %s via [%s+0]", in.Callee.QualifiedName(), in.Args[0])
		if in.ExcSite {
			s += "   ; dispatch load is the implicit null check"
		}
		return s
	case ir.OpCallStatic:
		return fmt.Sprintf("call   %s", in.Callee.QualifiedName())
	case ir.OpJump:
		return fmt.Sprintf("jmp    %s               ; free (layout)", in.Targets[0])
	case ir.OpIf:
		return fmt.Sprintf("cmp/b  %s %s %s -> %s else %s", in.Args[0], in.Cond, in.Args[1], in.Targets[0], in.Targets[1])
	default:
		return in.String()
	}
}

// String renders the whole listing.
func (l *Listing) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s lowered for %s — %d lines, %d static cycles, %d explicit checks, %d implicit sites\n",
		l.Fn.Name, l.Model.Name, len(l.Lines), l.StaticCycles, l.ExplicitChecks, l.ImplicitSites)
	var cur *ir.Block
	for _, line := range l.Lines {
		if line.Block != cur {
			cur = line.Block
			fmt.Fprintf(&sb, "%s:", cur)
			if cur.Try != ir.NoTry {
				fmt.Fprintf(&sb, "   ; try region %d", cur.Try)
			}
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "  %3dcy  %s\n", line.Cycles, line.Text)
	}
	return sb.String()
}
