package codegen

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
	"trapnull/internal/rt"
)

func sample() (*ir.Program, *ir.Class, *ir.Func) {
	p := ir.NewProgram("cg")
	cls := p.NewClass("C", &ir.Field{Name: "f", Kind: ir.KindInt})
	b := ir.NewFunc("get", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, cls.FieldByName("f"))
	b.Return(ir.Var(v))
	fn := b.Finish()
	p.AddMethod(nil, "get", fn, false)
	return p, cls, fn
}

func TestLowerCountsChecks(t *testing.T) {
	_, _, fn := sample()
	m := arch.IA32Win()
	l := Lower(fn, m)
	if l.ExplicitChecks != 1 || l.ImplicitSites != 0 {
		t.Fatalf("before opt: explicit=%d implicit=%d, want 1/0", l.ExplicitChecks, l.ImplicitSites)
	}

	nullcheck.Phase2(fn, m)
	l = Lower(fn, m)
	if l.ExplicitChecks != 0 || l.ImplicitSites != 1 {
		t.Fatalf("after phase2: explicit=%d implicit=%d, want 0/1", l.ExplicitChecks, l.ImplicitSites)
	}
}

func TestLoweringStylesPerArch(t *testing.T) {
	_, _, fn := sample()
	ia := Lower(fn, arch.IA32Win()).String()
	if !strings.Contains(ia, "cmp") || !strings.Contains(ia, "je .throw_npe") {
		t.Fatalf("ia32 listing missing compare/branch check:\n%s", ia)
	}
	_, _, fn2 := sample()
	ppc := Lower(fn2, arch.PPCAIX()).String()
	if !strings.Contains(ppc, "tweq") {
		t.Fatalf("ppc listing missing conditional trap:\n%s", ppc)
	}
}

func TestImplicitSiteAnnotated(t *testing.T) {
	_, _, fn := sample()
	m := arch.IA32Win()
	nullcheck.Phase2(fn, m)
	s := Lower(fn, m).String()
	if !strings.Contains(s, "implicit null check") {
		t.Fatalf("listing missing exception-site annotation:\n%s", s)
	}
}

// TestStaticCostMatchesDynamicOnStraightLine: for a branch-free function the
// machine's dynamic cycle count must equal the listing's static total —
// the two accountings share one cost model and must not drift.
func TestStaticCostMatchesDynamicOnStraightLine(t *testing.T) {
	p := ir.NewProgram("straight")
	cls := p.NewClass("C", &ir.Field{Name: "f", Kind: ir.KindInt})
	b := ir.NewFunc("run", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	o := b.Temp(ir.KindRef)
	b.New(o, cls)
	b.PutField(o, cls.FieldByName("f"), ir.ConstInt(5))
	v := b.Temp(ir.KindInt)
	b.GetField(v, o, cls.FieldByName("f"))
	w := b.Temp(ir.KindInt)
	b.Binop(ir.OpMul, w, ir.Var(v), ir.ConstInt(3))
	b.Return(ir.Var(w))
	fn := b.Finish()
	p.AddMethod(nil, "run", fn, false)

	m := arch.IA32Win()
	l := Lower(fn, m)

	mach := machine.New(m, p)
	out, err := mach.Call(fn)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != 15 {
		t.Fatalf("out = %+v", out)
	}
	if mach.Cycles != l.StaticCycles {
		t.Fatalf("dynamic %d != static %d cycles", mach.Cycles, l.StaticCycles)
	}
}

func TestListingCoversEveryInstruction(t *testing.T) {
	_, _, fn := sample()
	l := Lower(fn, arch.IA32Win())
	if len(l.Lines) != fn.NumInstrs() {
		t.Fatalf("listing has %d lines, function has %d instructions", len(l.Lines), fn.NumInstrs())
	}
	for _, line := range l.Lines {
		if line.Text == "" {
			t.Fatalf("empty text for %s", line.Instr.Op)
		}
	}
}
