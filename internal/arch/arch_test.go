package arch

import (
	"testing"

	"trapnull/internal/ir"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"ia32-win", "ppc-aix", "sparc-like", "ia32", "aix", "sparc"} {
		m, err := ByName(name)
		if err != nil || m == nil {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestIA32TrapsReadAndWrite(t *testing.T) {
	m := IA32Win()
	read := ir.SlotAccess{Base: 0, Offset: 8}
	write := ir.SlotAccess{Base: 0, Offset: 8, IsWrite: true}
	if !m.TrapsForAccess(read) {
		t.Fatal("ia32 must trap small-offset reads")
	}
	if !m.TrapsForAccess(write) {
		t.Fatal("ia32 must trap small-offset writes")
	}
}

func TestAIXTrapsOnlyWrites(t *testing.T) {
	m := PPCAIX()
	read := ir.SlotAccess{Base: 0, Offset: 8}
	write := ir.SlotAccess{Base: 0, Offset: 8, IsWrite: true}
	if m.TrapsForAccess(read) {
		t.Fatal("aix must not trap reads (Figure 5(2))")
	}
	if !m.TrapsForAccess(write) {
		t.Fatal("aix must trap writes")
	}
	if !m.SpeculativeReads {
		t.Fatal("aix must allow read speculation")
	}
}

func TestBigOffsetNeverTraps(t *testing.T) {
	m := IA32Win()
	big := ir.SlotAccess{Base: 0, Offset: int32(m.TrapAreaBytes)}
	if m.TrapsForAccess(big) {
		t.Fatal("offset at trap-area boundary must not be trusted to trap (Figure 5(1))")
	}
	edge := ir.SlotAccess{Base: 0, Offset: int32(m.TrapAreaBytes - ir.WordBytes)}
	if !m.TrapsForAccess(edge) {
		t.Fatal("last in-area offset must trap")
	}
}

func TestDynamicAccessNeverGuaranteed(t *testing.T) {
	for _, m := range []*Model{IA32Win(), PPCAIX(), SPARCLike()} {
		dyn := ir.SlotAccess{Base: 0, Offset: -1, Dynamic: true}
		if m.TrapsForAccess(dyn) {
			t.Fatalf("%s: dynamic array offset must never be a guaranteed trap", m.Name)
		}
	}
}

func TestExplicitCheckCheaperOnPPC(t *testing.T) {
	// The paper attributes smaller AIX deltas to the 1-cycle conditional
	// trap instruction (§5.4); the models must preserve that relationship.
	if PPCAIX().ExplicitNullCheckCycles >= IA32Win().ExplicitNullCheckCycles {
		t.Fatal("ppc explicit check must be cheaper than ia32's")
	}
}

func TestCostTableCoversAllOps(t *testing.T) {
	m := IA32Win()
	cls := &ir.Class{Name: "C", SizeBytes: 24}
	callee := &ir.Method{Name: "m"}
	field := &ir.Field{Name: "f", Offset: 8}
	instrs := []*ir.Instr{
		{Op: ir.OpMove, Args: []ir.Operand{ir.ConstInt(0)}},
		{Op: ir.OpAdd, Args: []ir.Operand{ir.ConstInt(0), ir.ConstInt(0)}},
		{Op: ir.OpMul, Args: []ir.Operand{ir.ConstInt(0), ir.ConstInt(0)}},
		{Op: ir.OpDiv, Args: []ir.Operand{ir.ConstInt(0), ir.ConstInt(1)}},
		{Op: ir.OpFAdd, Args: []ir.Operand{ir.ConstFloat(0), ir.ConstFloat(0)}},
		{Op: ir.OpFMul, Args: []ir.Operand{ir.ConstFloat(0), ir.ConstFloat(0)}},
		{Op: ir.OpFDiv, Args: []ir.Operand{ir.ConstFloat(0), ir.ConstFloat(1)}},
		{Op: ir.OpMath, Fn: ir.MathExp, Args: []ir.Operand{ir.ConstFloat(0)}},
		{Op: ir.OpNullCheck, Args: []ir.Operand{ir.Var(0)}},
		{Op: ir.OpBoundCheck, Args: []ir.Operand{ir.ConstInt(0), ir.ConstInt(1)}},
		{Op: ir.OpGetField, Field: field, Args: []ir.Operand{ir.Var(0)}},
		{Op: ir.OpPutField, Field: field, Args: []ir.Operand{ir.Var(0), ir.ConstInt(0)}},
		{Op: ir.OpArrayLength, Args: []ir.Operand{ir.Var(0)}},
		{Op: ir.OpArrayLoad, Args: []ir.Operand{ir.Var(0), ir.ConstInt(0)}},
		{Op: ir.OpArrayStore, Args: []ir.Operand{ir.Var(0), ir.ConstInt(0), ir.ConstInt(0)}},
		{Op: ir.OpNew, Class: cls},
		{Op: ir.OpNewArray, Args: []ir.Operand{ir.ConstInt(4)}},
		{Op: ir.OpCallStatic, Callee: callee},
		{Op: ir.OpCallVirtual, Callee: callee, Args: []ir.Operand{ir.Var(0)}},
		{Op: ir.OpJump},
		{Op: ir.OpIf, Args: []ir.Operand{ir.ConstInt(0), ir.ConstInt(0)}},
		{Op: ir.OpReturn},
		{Op: ir.OpThrow, Args: []ir.Operand{ir.Var(0)}},
	}
	for _, in := range instrs {
		c := m.Cost(in)
		if in.Op == ir.OpJump {
			// Unconditional jumps are free: block straightening hides them.
			if c != 0 {
				t.Fatalf("cost of jump = %d, want 0", c)
			}
			continue
		}
		if c <= 0 {
			t.Fatalf("cost of %s = %d, want positive", in.Op, c)
		}
	}
	// Virtual dispatch must cost more than a static call.
	static := &ir.Instr{Op: ir.OpCallStatic, Callee: callee}
	virt := &ir.Instr{Op: ir.OpCallVirtual, Callee: callee, Args: []ir.Operand{ir.Var(0)}}
	if m.Cost(virt) <= m.Cost(static) {
		t.Fatal("virtual call must cost more than static call")
	}
}
