// Package arch models the architecture/OS combinations of the paper: how the
// hardware trap behaves for null dereferences and what each instruction
// costs. Phase 2 of the null check optimization consults the model to decide
// which checks may become implicit; the machine simulator consults it to
// decide which accesses trap; the code generator consults the cost table.
package arch

import (
	"fmt"

	"trapnull/internal/ir"
)

// Model describes one target platform.
type Model struct {
	Name string

	// ClockHz converts simulated cycles into simulated time; the paper's
	// machines were a 600 MHz Pentium III and a 332 MHz PowerPC 604e.
	ClockHz int64

	// TrapAreaBytes is the size of the protected region starting at address
	// zero. An access to [0, TrapAreaBytes) raises a hardware trap — if the
	// access kind traps at all on this OS. Field offsets at or beyond the
	// area never trap (the paper's "BigOffset" case, Figure 5(1)).
	TrapAreaBytes int64

	// TrapOnRead / TrapOnWrite say whether reads/writes inside the trap
	// area raise a trap the JIT can turn into a NullPointerException.
	// Windows/IA32 traps on both; AIX traps only on writes (Figure 5(2)).
	TrapOnRead  bool
	TrapOnWrite bool

	// SpeculativeReads is the flip side of !TrapOnRead: a read through a
	// null reference is guaranteed harmless, so scalar replacement may
	// hoist reads above their null checks (paper §3.3.1).
	SpeculativeReads bool

	// MathIntrinsics reports whether math functions lower to single
	// instructions. True on the paper's IA32 (exp), false on PowerPC,
	// where Math.exp stays a call and blocks scalar replacement (§5.4).
	MathIntrinsics bool

	// Cycle costs of the operations the code generator emits.
	ExplicitNullCheckCycles int64 // IA32 compare+branch: 2; PPC trap-word: 1
	BoundCheckCycles        int64
	LoadCycles              int64
	StoreCycles             int64
	AluCycles               int64
	MulCycles               int64
	DivCycles               int64
	FAddCycles              int64
	FMulCycles              int64
	FDivCycles              int64
	MathCycles              int64 // intrinsic math instruction
	BranchCycles            int64
	MoveCycles              int64
	CallOverheadCycles      int64 // static call linkage
	VirtualDispatchCycles   int64 // extra for vtable load + indirect call
	AllocCycles             int64 // base cost of new/newarray
	AllocPerWordCycles      int64
	ReturnCycles            int64
	// TrapDispatchCycles is the (large) cost of taking a real hardware trap
	// and routing it through the OS to the JIT's handler. Only paid when a
	// null is actually dereferenced, which is the exceptional path.
	TrapDispatchCycles int64
}

// IA32Win models the paper's Pentium III / Windows NT target: reads and
// writes both trap on the first page, explicit checks cost a compare and a
// conditional branch, and Math.exp is an instruction.
func IA32Win() *Model {
	return &Model{
		Name:                    "ia32-win",
		ClockHz:                 600_000_000, // Pentium III 600 MHz
		TrapAreaBytes:           4096,
		TrapOnRead:              true,
		TrapOnWrite:             true,
		SpeculativeReads:        false,
		MathIntrinsics:          true,
		ExplicitNullCheckCycles: 2,
		BoundCheckCycles:        2,
		LoadCycles:              2,
		StoreCycles:             2,
		AluCycles:               1,
		MulCycles:               4,
		DivCycles:               20,
		FAddCycles:              3,
		FMulCycles:              4,
		FDivCycles:              18,
		MathCycles:              40,
		BranchCycles:            1,
		MoveCycles:              1,
		CallOverheadCycles:      10,
		VirtualDispatchCycles:   6,
		AllocCycles:             30,
		AllocPerWordCycles:      1,
		ReturnCycles:            2,
		TrapDispatchCycles:      5000,
	}
}

// PPCAIX models the paper's PowerPC 604e / AIX 4.3.3 target: only writes to
// the first page trap, reads are speculable, the explicit check is a
// one-cycle conditional trap instruction (tw), and math stays a call.
func PPCAIX() *Model {
	return &Model{
		Name:                    "ppc-aix",
		ClockHz:                 332_000_000, // PowerPC 604e 332 MHz
		TrapAreaBytes:           4096,
		TrapOnRead:              false,
		TrapOnWrite:             true,
		SpeculativeReads:        true,
		MathIntrinsics:          false,
		ExplicitNullCheckCycles: 1, // conditional trap: one cycle when not taken
		BoundCheckCycles:        2,
		LoadCycles:              2,
		StoreCycles:             2,
		AluCycles:               1,
		MulCycles:               4,
		DivCycles:               21,
		FAddCycles:              3,
		FMulCycles:              3,
		FDivCycles:              18,
		MathCycles:              40,
		BranchCycles:            1,
		MoveCycles:              1,
		CallOverheadCycles:      12,
		VirtualDispatchCycles:   7,
		AllocCycles:             30,
		AllocPerWordCycles:      1,
		ReturnCycles:            2,
		TrapDispatchCycles:      5000,
	}
}

// SPARCLike models LaTTe's assumption (§2.1): every null dereference traps,
// with a generous protected area.
func SPARCLike() *Model {
	m := IA32Win()
	m.Name = "sparc-like"
	m.TrapAreaBytes = 8192
	m.MathIntrinsics = false
	return m
}

// ByName returns a model for the CLI flags.
func ByName(name string) (*Model, error) {
	switch name {
	case "ia32-win", "ia32", "win":
		return IA32Win(), nil
	case "ppc-aix", "ppc", "aix":
		return PPCAIX(), nil
	case "sparc-like", "sparc":
		return SPARCLike(), nil
	}
	return nil, fmt.Errorf("arch: unknown model %q", name)
}

// TrapsForAccess reports whether a null-based access described by sa is
// guaranteed to raise a hardware trap on this model. This is the condition
// for converting the access's null check into an implicit one: the offset
// must be statically inside the protected area and the OS must trap for the
// access kind. Dynamic (array element) offsets are never guaranteed.
func (m *Model) TrapsForAccess(sa ir.SlotAccess) bool {
	if sa.Dynamic || sa.Offset < 0 || int64(sa.Offset) >= m.TrapAreaBytes {
		return false
	}
	if sa.IsWrite {
		return m.TrapOnWrite
	}
	return m.TrapOnRead
}

// Cost returns the cycle cost of executing one IR instruction on this model.
// OpNullCheck costs apply only to explicit checks; implicit checks were
// deleted by phase 2 and cost nothing, which is the entire point.
func (m *Model) Cost(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpMove:
		return m.MoveCycles
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpNeg, ir.OpNot, ir.OpIntToFloat, ir.OpFloatToInt, ir.OpCmp:
		return m.AluCycles
	case ir.OpMul:
		return m.MulCycles
	case ir.OpDiv, ir.OpRem:
		return m.DivCycles
	case ir.OpFAdd, ir.OpFSub, ir.OpFNeg:
		return m.FAddCycles
	case ir.OpFMul:
		return m.FMulCycles
	case ir.OpFDiv:
		return m.FDivCycles
	case ir.OpMath:
		return m.MathCycles
	case ir.OpInstanceOf:
		// Null test + header load + class compare.
		return m.AluCycles + m.LoadCycles + m.AluCycles
	case ir.OpNullCheck:
		if in.SpecGuard != 0 {
			// Tier-2 speculation guard: the fast path compiles to nothing;
			// the rare firing is charged dynamically as a full trap.
			return 0
		}
		return m.ExplicitNullCheckCycles
	case ir.OpBoundCheck:
		return m.BoundCheckCycles
	case ir.OpGetField, ir.OpArrayLength, ir.OpArrayLoad:
		return m.LoadCycles
	case ir.OpPutField, ir.OpArrayStore:
		return m.StoreCycles
	case ir.OpNew:
		return m.AllocCycles + m.AllocPerWordCycles*int64(in.Class.SizeBytes/ir.WordBytes)
	case ir.OpNewArray:
		return m.AllocCycles // per-word cost added at runtime by the machine
	case ir.OpCallStatic:
		return m.CallOverheadCycles
	case ir.OpCallVirtual:
		return m.CallOverheadCycles + m.VirtualDispatchCycles + m.LoadCycles
	case ir.OpJump:
		// Unconditional branches fall out of code layout (block
		// straightening); charging them would bill the optimizer's own
		// CFG scaffolding against the optimization being measured.
		return 0
	case ir.OpIf:
		return m.BranchCycles
	case ir.OpReturn:
		return m.ReturnCycles
	case ir.OpThrow:
		return m.BranchCycles
	}
	return 1
}
