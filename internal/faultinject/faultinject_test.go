package faultinject

import (
	"reflect"
	"sync"
	"testing"
)

// TestDecisionsArePureFunctions: every fault class answers identically for
// the same (seed, coordinates), and different seeds decorrelate.
func TestDecisionsArePureFunctions(t *testing.T) {
	a, b := New(42), New(42)

	pfA, pfB := a.PassFault("key1"), b.PassFault("key1")
	for _, m := range []string{"A.main", "B.get"} {
		for _, p := range []string{"phase1#0", "dce#3"} {
			if pfA(m, p) != pfB(m, p) {
				t.Fatalf("pass fault for (%s,%s) differs across injectors with the same seed", m, p)
			}
		}
	}

	for _, cell := range []string{"ia32-win/full/TrapStorm", "ppc-aix/write/NullStorm"} {
		sA, okA := a.StepFault(cell)
		sB, okB := b.StepFault(cell)
		if sA != sB || okA != okB {
			t.Fatalf("step fault for %s differs: (%d,%v) vs (%d,%v)", cell, sA, okA, sB, okB)
		}
		if okA && (sA < 1 || sA > a.MaxFaultStep) {
			t.Fatalf("step fault for %s at %d outside [1,%d]", cell, sA, a.MaxFaultStep)
		}
	}

	cfA, cfB := a.CacheFaults(), b.CacheFaults()
	for _, key := range []string{"k1", "k2", "k3", "k4"} {
		if cfA.Evict(key) != cfB.Evict(key) || cfA.Corrupt(key) != cfB.Corrupt(key) {
			t.Fatalf("cache fault for %s differs across injectors with the same seed", key)
		}
	}

	// A different seed must not reproduce seed 42's step decisions verbatim
	// over a reasonable coordinate space.
	c := New(43)
	same := true
	for _, cell := range []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"} {
		s1, ok1 := New(42).StepFault(cell)
		s2, ok2 := c.StepFault(cell)
		if s1 != s2 || ok1 != ok2 {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 draw identical step schedules")
	}
}

// TestScheduleIsOrderIndependent: the rendered schedule depends only on
// WHICH coordinates were probed, not on probe order or concurrency.
func TestScheduleIsOrderIndependent(t *testing.T) {
	coords := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}

	probe := func(j *Injector, order []string, workers int) []string {
		var wg sync.WaitGroup
		ch := make(chan string)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cf := j.CacheFaults()
				pf := j.PassFault("fixed-key")
				for c := range ch {
					cf.Evict(c)
					cf.Corrupt(c)
					j.StepFault(c)
					pf(c, "pass")
				}
			}()
		}
		for _, c := range order {
			ch <- c
		}
		close(ch)
		wg.Wait()
		return j.Schedule()
	}

	serial := probe(New(7), coords, 1)
	reversed := make([]string, len(coords))
	for i, c := range coords {
		reversed[len(coords)-1-i] = c
	}
	if got := probe(New(7), reversed, 1); !reflect.DeepEqual(serial, got) {
		t.Fatalf("schedule depends on probe order:\n%v\nvs\n%v", serial, got)
	}
	if got := probe(New(7), coords, 4); !reflect.DeepEqual(serial, got) {
		t.Fatalf("schedule depends on concurrency:\n%v\nvs\n%v", serial, got)
	}
	if len(serial) == 0 {
		t.Fatal("default rates armed nothing over 10 coordinates — the test probes nothing")
	}

	// Probing the same coordinate twice must not duplicate schedule lines.
	j := New(7)
	cf := j.CacheFaults()
	cf.Evict("a")
	cf.Evict("a")
	j.StepFault("a")
	j.StepFault("a")
	first := len(j.Schedule())
	cf.Evict("a")
	j.StepFault("a")
	if len(j.Schedule()) != first {
		t.Fatal("re-probing a coordinate grew the schedule")
	}
}

// TestBurstWindowsAreDisjointSortedAndSeeded: windows cover [0,n) without
// overlap, reproduce for the same seed, and move with it.
func TestBurstWindowsAreDisjointSortedAndSeeded(t *testing.T) {
	const n, nb = 1024, 3
	w1 := New(9).BurstWindows("SeededBurst[9]", n, nb)
	w2 := New(9).BurstWindows("SeededBurst[9]", n, nb)
	if !reflect.DeepEqual(w1, w2) {
		t.Fatalf("same seed drew different windows: %v vs %v", w1, w2)
	}
	if len(w1) != nb {
		t.Fatalf("got %d windows, want %d", len(w1), nb)
	}
	prevEnd := int64(0)
	for _, w := range w1 {
		start, length := w[0], w[1]
		if length < 1 {
			t.Fatalf("empty window %v", w)
		}
		if start < prevEnd {
			t.Fatalf("windows overlap or are unsorted: %v", w1)
		}
		if start+length > n {
			t.Fatalf("window %v exceeds [0,%d)", w, n)
		}
		prevEnd = start + length
	}
	if w3 := New(10).BurstWindows("SeededBurst[10]", n, nb); reflect.DeepEqual(w1, w3) {
		t.Fatal("different seeds drew identical windows")
	}
}

// TestZeroRatesDisable: a rate of 0 turns its fault class off entirely.
func TestZeroRatesDisable(t *testing.T) {
	j := New(5)
	j.PassFaultEvery, j.StepFaultEvery, j.EvictEvery, j.CorruptEvery = 0, 0, 0, 0
	if j.PassFault("k") != nil {
		t.Fatal("PassFaultEvery=0 still returns a hook")
	}
	if _, ok := j.StepFault("c"); ok {
		t.Fatal("StepFaultEvery=0 still arms a step fault")
	}
	cf := j.CacheFaults()
	for _, k := range []string{"a", "b", "c"} {
		if cf.Evict(k) || cf.Corrupt(k) {
			t.Fatal("zero cache rates still arm faults")
		}
	}
	if len(j.Schedule()) != 0 {
		t.Fatalf("disabled injector recorded a schedule: %v", j.Schedule())
	}
}
