// Package faultinject is the deterministic seeded fault-injection framework
// behind the chaos harness (bench.RunChaos, benchtab -chaos).
//
// Every injection decision is a pure function of the seed and the fault's
// SEMANTIC coordinates — never of wall-clock time, goroutine identity or
// sweep scheduling. The coordinates are chosen so the decision set itself is
// schedule-independent:
//
//   - compile-pass faults key on (cache key ID, method, pass): under
//     single-flight coalescing WHICH cell performs a compilation depends on
//     worker interleaving, but WHAT is compiled does not, so keying on the
//     compilation identity (not the cell) makes the same compile draw the
//     same fault on every run at any worker count;
//   - engine step faults key on the cell identity (model, config, workload)
//     and fire at a seed-derived dynamic step count, through the machines'
//     shared step-limit choke point — both engines report the identical
//     fault at the identical count;
//   - cache-slot faults key on the cache key ID; the cache arms them once
//     per key and repairs them transparently (see jit.CacheFaultPolicy).
//
// The injector records every armed decision; Schedule() renders them sorted,
// so two runs with the same seed produce byte-identical schedules regardless
// of parallelism. Fired-fault counts are deliberately NOT part of the
// schedule: how often a cache fault is tripped depends on lookup order, while
// what was armed does not.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Injector draws fault schedules from a seed. The rate fields are "one in N"
// probabilities over the coordinate hash (0 disables that fault class). The
// zero value is unusable; construct with New.
type Injector struct {
	Seed int64

	// PassFaultEvery injects a panic into roughly 1/N of (compilation,
	// method, pass) coordinates.
	PassFaultEvery uint64
	// StepFaultEvery arms an engine step fault in roughly 1/N of cells; the
	// firing step is drawn from the same hash.
	StepFaultEvery uint64
	// EvictEvery / CorruptEvery arm a cache-slot fault on roughly 1/N of
	// completed cache entries.
	EvictEvery   uint64
	CorruptEvery uint64
	// MaxFaultStep bounds the drawn firing step (exclusive); the default
	// covers a quick-size cell's dynamic step range.
	MaxFaultStep int64

	mu    sync.Mutex
	armed map[string]bool
}

// New returns an injector with the default rates: pass faults rare enough
// that most compilations survive, step faults in a third of cells, cache
// faults (which are outcome-transparent) common.
func New(seed int64) *Injector {
	return &Injector{
		Seed:           seed,
		PassFaultEvery: 300,
		StepFaultEvery: 3,
		EvictEvery:     2,
		CorruptEvery:   3,
		MaxFaultStep:   150_000,
		armed:          make(map[string]bool),
	}
}

// hash folds the seed and coordinates through FNV-1a. Deterministic across
// platforms and processes.
func (j *Injector) hash(coords ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", j.Seed)
	for _, c := range coords {
		h.Write([]byte{0})
		h.Write([]byte(c))
	}
	return h.Sum64()
}

// record notes an armed decision for the schedule.
func (j *Injector) record(line string) {
	j.mu.Lock()
	j.armed[line] = true
	j.mu.Unlock()
}

// PassFault returns the jit.CompileOptions.PassFault hook for one
// compilation, identified by its cache key ID. The returned function is pure:
// the same (seed, key, method, pass) always injects — or always doesn't.
func (j *Injector) PassFault(keyID string) func(method, pass string) string {
	if j.PassFaultEvery == 0 {
		return nil
	}
	return func(method, pass string) string {
		h := j.hash("pass", keyID, method, pass)
		if h%j.PassFaultEvery != 0 {
			return ""
		}
		j.record(fmt.Sprintf("pass-fault  key=%s method=%s pass=%s", keyID, method, pass))
		return fmt.Sprintf("faultinject: injected pass fault (seed %d)", j.Seed)
	}
}

// StepFault decides whether the cell identified by cellID suffers an engine
// step fault and at which dynamic step count it fires. The machine arms it
// with Machine.InjectStepFault.
func (j *Injector) StepFault(cellID string) (step int64, ok bool) {
	if j.StepFaultEvery == 0 {
		return 0, false
	}
	h := j.hash("step", cellID)
	if h%j.StepFaultEvery != 0 {
		return 0, false
	}
	max := j.MaxFaultStep
	if max <= 0 {
		max = 150_000
	}
	step = int64(j.hash("step-at", cellID)%uint64(max)) + 1
	j.record(fmt.Sprintf("step-fault  cell=%s step=%d", cellID, step))
	return step, true
}

// CacheFaults returns the deterministic cache fault policy for this seed.
func (j *Injector) CacheFaults() *CacheFaults {
	return &CacheFaults{
		Evict: func(keyID string) bool {
			if j.EvictEvery == 0 || j.hash("cache-evict", keyID)%j.EvictEvery != 0 {
				return false
			}
			j.record(fmt.Sprintf("cache-evict key=%s", keyID))
			return true
		},
		Corrupt: func(keyID string) bool {
			if j.CorruptEvery == 0 || j.hash("cache-corrupt", keyID)%j.CorruptEvery != 0 {
				return false
			}
			j.record(fmt.Sprintf("cache-corrupt key=%s", keyID))
			return true
		},
	}
}

// CacheFaults mirrors jit.CacheFaultPolicy without importing jit (this
// package sits below every layer it perturbs).
type CacheFaults struct {
	Evict   func(keyID string) bool
	Corrupt func(keyID string) bool
}

// BurstWindows derives nb adversarial null-burst windows over [0, n) for the
// workload identified by name: deterministic start/length pairs the seeded
// burst workload bakes into its kernel. Windows are disjoint and sorted.
func (j *Injector) BurstWindows(name string, n, nb int64) [][2]int64 {
	if nb <= 0 || n <= 0 {
		return nil
	}
	stride := n / nb
	if stride < 2 {
		stride, nb = 2, n/2
	}
	wins := make([][2]int64, 0, nb)
	for k := int64(0); k < nb; k++ {
		base := k * stride
		start := base + int64(j.hash("burst-start", name, fmt.Sprint(k))%uint64(stride/2+1))
		length := int64(j.hash("burst-len", name, fmt.Sprint(k))%uint64(stride/2)) + 1
		if start+length > base+stride {
			length = base + stride - start
		}
		wins = append(wins, [2]int64{start, length})
	}
	return wins
}

// Schedule renders every armed decision, sorted, one per line. Byte-identical
// across runs with the same seed at any parallelism, because arming depends
// only on which coordinates exist — a property of the sweep, not the
// schedule.
func (j *Injector) Schedule() []string {
	j.mu.Lock()
	lines := make([]string, 0, len(j.armed))
	for l := range j.armed {
		lines = append(lines, l)
	}
	j.mu.Unlock()
	sort.Strings(lines)
	return lines
}
