package rt

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// TestClassifyBoundaries pins the byte-exact edges of the address-space
// layout for the trap-area sizes of the real models: the last byte inside the
// protected area is a trap candidate, the first byte past it is silent
// garbage, and addresses just below HeapBase never trap (Figure 5(1)).
func TestClassifyBoundaries(t *testing.T) {
	h := NewHeap(0)
	obj := h.AllocArray(2)

	models := []*arch.Model{arch.IA32Win(), arch.PPCAIX()}
	for _, m := range models {
		ta := m.TrapAreaBytes
		cases := []struct {
			name string
			addr int64
			want AccessResult
		}{
			{"first protected byte", 0, AccessTrapCandidate},
			{"last protected byte", ta - 1, AccessTrapCandidate},
			{"first unprotected byte", ta, AccessGarbage},
			{"mid gap", (ta + HeapBase) / 2, AccessGarbage},
			{"last gap word", HeapBase - ir.WordBytes, AccessGarbage},
			{"byte below HeapBase", HeapBase - 1, AccessGarbage},
			{"first heap word", obj, AccessOK},
		}
		for _, c := range cases {
			if got := h.Classify(c.addr, ta); got != c.want {
				t.Errorf("%s: Classify(%#x, %d) = %v, want %v", m.Name, c.addr, ta, got, c.want)
			}
		}
	}
}

// TestClassifyNegativeAddresses: a negative address (e.g. null base plus a
// negative offset after folding) must never be a trap candidate — the paper's
// mechanism only protects [0, trapArea), so phase 2 cannot rely on traps for
// such accesses and Classify must agree.
func TestClassifyNegativeAddresses(t *testing.T) {
	h := NewHeap(0)
	for _, addr := range []int64{-1, -8, -4096, -HeapBase, int64(-1) << 40} {
		if got := h.Classify(addr, 4096); got != AccessGarbage {
			t.Errorf("Classify(%d) = %v, want AccessGarbage", addr, got)
		}
	}
}

// TestTrapGuaranteeMatchesModel ties Classify to the per-model access-kind
// semantics: on IA32/Windows both reads and writes inside the protected page
// trap, while on PowerPC/AIX the first page of virtual memory is readable and
// only writes trap (§4.2.1). A trap *candidate* only becomes a guaranteed
// trap when the model says so.
func TestTrapGuaranteeMatchesModel(t *testing.T) {
	h := NewHeap(0)
	ia32, aix := arch.IA32Win(), arch.PPCAIX()

	inArea := ia32.TrapAreaBytes - ir.WordBytes
	if h.Classify(inArea, ia32.TrapAreaBytes) != AccessTrapCandidate {
		t.Fatalf("%#x should be a trap candidate", inArea)
	}

	read := ir.SlotAccess{Base: 0, Offset: int32(inArea)}
	write := ir.SlotAccess{Base: 0, Offset: int32(inArea), IsWrite: true}
	if !ia32.TrapsForAccess(read) || !ia32.TrapsForAccess(write) {
		t.Error("ia32-win: both reads and writes in the trap area must trap")
	}
	if aix.TrapsForAccess(read) {
		t.Error("ppc-aix: reads in the first page must not trap")
	}
	if !aix.TrapsForAccess(write) {
		t.Error("ppc-aix: writes in the first page must trap")
	}

	// Outside the protected area no model guarantees a trap, even though the
	// address is still garbage memory.
	past := ir.SlotAccess{Base: 0, Offset: int32(ia32.TrapAreaBytes)}
	if ia32.TrapsForAccess(past) || aix.TrapsForAccess(past) {
		t.Error("access past the trap area must never be a guaranteed trap")
	}
}
