package rt

import (
	"testing"
	"testing/quick"

	"trapnull/internal/ir"
)

func TestAllocObjectLayout(t *testing.T) {
	h := NewHeap(0)
	cls := &ir.Class{Name: "C", ID: 7, SizeBytes: 24}
	addr := h.AllocObject(cls)
	if addr != HeapBase {
		t.Fatalf("first allocation at %#x, want HeapBase %#x", addr, HeapBase)
	}
	if got := h.ClassIDOf(addr); got != 7 {
		t.Fatalf("header = %d, want class ID 7", got)
	}
	// Fields start zeroed.
	if v, ok := h.Peek(addr + 8); !ok || v != 0 {
		t.Fatalf("field not zeroed: %d ok=%v", v, ok)
	}
}

func TestAllocArrayLengthSlot(t *testing.T) {
	h := NewHeap(0)
	arr := h.AllocArray(5)
	if v, ok := h.Peek(arr); !ok || v != 5 {
		t.Fatalf("length slot = %d ok=%v, want 5", v, ok)
	}
	h.Store(arr+ir.ArrayHeaderBytes+3*ir.WordBytes, 99)
	if got := h.Load(arr + ir.ArrayHeaderBytes + 3*ir.WordBytes); got != 99 {
		t.Fatalf("element = %d, want 99", got)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := NewHeap(0)
	a := h.AllocArray(4) // 5 words
	b := h.AllocArray(4)
	if b < a+5*ir.WordBytes {
		t.Fatalf("allocations overlap: %#x then %#x", a, b)
	}
	h.Store(a+ir.ArrayHeaderBytes, 1)
	h.Store(b+ir.ArrayHeaderBytes, 2)
	if h.Load(a+ir.ArrayHeaderBytes) != 1 {
		t.Fatal("write to b clobbered a")
	}
}

func TestClassifyRegions(t *testing.T) {
	h := NewHeap(0)
	addr := h.AllocArray(2)
	const trapArea = 4096
	cases := []struct {
		addr int64
		want AccessResult
	}{
		{0, AccessTrapCandidate},
		{8, AccessTrapCandidate},
		{trapArea - 8, AccessTrapCandidate},
		{trapArea, AccessGarbage},
		{HeapBase - 8, AccessGarbage},
		{addr, AccessOK},
		{addr + 16, AccessOK},
		{h.next, AccessGarbage}, // just past the bump pointer
	}
	for _, c := range cases {
		if got := h.Classify(c.addr, trapArea); got != c.want {
			t.Fatalf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestExceptionObjects(t *testing.T) {
	h := NewHeap(0)
	for _, k := range []ExcKind{ExcNullPointer, ExcArrayIndexOutOfBounds, ExcArithmetic, ExcNegativeArraySize} {
		ref := h.AllocException(k)
		if got := h.ExcKindOf(ref); got != k {
			t.Fatalf("ExcKindOf = %v, want %v", got, k)
		}
	}
	// Non-exception objects report ExcNone.
	cls := &ir.Class{Name: "C", ID: 1, SizeBytes: 16}
	obj := h.AllocObject(cls)
	if h.ExcKindOf(obj) != ExcNone {
		t.Fatal("plain object classified as exception")
	}
	if h.ExcKindOf(0) != ExcNone {
		t.Fatal("null classified as exception")
	}
}

func TestResetClearsHeap(t *testing.T) {
	h := NewHeap(0)
	h.AllocArray(10)
	h.Reset()
	if h.LiveWords() != 0 {
		t.Fatalf("LiveWords = %d after Reset", h.LiveWords())
	}
	if addr := h.AllocArray(1); addr != HeapBase {
		t.Fatalf("allocation after Reset at %#x, want HeapBase", addr)
	}
}

func TestExcKindStrings(t *testing.T) {
	if ExcNullPointer.String() != "NullPointerException" {
		t.Fatalf("got %q", ExcNullPointer.String())
	}
	if ExcNone.String() != "none" {
		t.Fatalf("got %q", ExcNone.String())
	}
}

func TestQuickLoadStoreRoundTrip(t *testing.T) {
	h := NewHeap(0)
	arr := h.AllocArray(64)
	f := func(idx uint8, v int64) bool {
		i := int64(idx % 64)
		addr := arr + ir.ArrayHeaderBytes + i*ir.WordBytes
		h.Store(addr, v)
		return h.Load(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocationAlwaysInHeapRegion(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := NewHeap(0)
		const trapArea = 4096
		for _, s := range sizes {
			addr := h.AllocWords(int64(s%32) + 1)
			if h.Classify(addr, trapArea) != AccessOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
