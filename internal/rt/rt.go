// Package rt implements the simulated runtime the compiled code runs
// against: a flat word-addressed heap with the address-space layout the
// paper's trap mechanism depends on, object and array allocation, and the
// exception kinds of the source language.
//
// Address space:
//
//	[0, trapArea)        protected page(s): an access here is a hardware
//	                     trap candidate — whether it actually traps depends
//	                     on the architecture model and the access kind
//	[trapArea, HeapBase) unprotected gap: models memory a big-offset access
//	                     through a null reference could hit without any
//	                     trap (Figure 5(1)); reads yield zero, writes are
//	                     swallowed
//	[HeapBase, ...)      the real heap, bump-allocated
package rt

import (
	"fmt"

	"trapnull/internal/ir"
)

// HeapBase is the address of the first heap word. It exceeds the largest
// field offset the source language permits (512 KB, JVM spec §4 as cited by
// the paper), so a null-based big-offset access always lands in the
// unprotected gap, never on a live object.
const HeapBase = int64(1) << 20

// ExcKind enumerates the exceptions the runtime can raise.
type ExcKind int32

const (
	ExcNone ExcKind = iota
	ExcNullPointer
	ExcArrayIndexOutOfBounds
	ExcArithmetic
	ExcNegativeArraySize
)

func (k ExcKind) String() string {
	switch k {
	case ExcNone:
		return "none"
	case ExcNullPointer:
		return "NullPointerException"
	case ExcArrayIndexOutOfBounds:
		return "ArrayIndexOutOfBoundsException"
	case ExcArithmetic:
		return "ArithmeticException"
	case ExcNegativeArraySize:
		return "NegativeArraySizeException"
	}
	return fmt.Sprintf("exc(%d)", int32(k))
}

// excClassBase distinguishes exception object headers from user class IDs
// (user class IDs are small positive numbers).
const excClassBase = int64(1) << 40

// Heap is the simulated memory.
type Heap struct {
	words []int64 // heap cells; words[i] is address HeapBase + 8*i
	next  int64   // bump pointer (address)
}

// NewHeap returns an empty heap with the given initial capacity in words.
func NewHeap(capWords int) *Heap {
	if capWords < 1024 {
		capWords = 1024
	}
	return &Heap{words: make([]int64, 0, capWords), next: HeapBase}
}

// Reset discards all allocations.
func (h *Heap) Reset() {
	h.words = h.words[:0]
	h.next = HeapBase
}

// AllocWords allocates n zeroed words and returns the base address.
func (h *Heap) AllocWords(n int64) int64 {
	if n < 0 {
		panic("rt: negative allocation")
	}
	addr := h.next
	h.next += n * ir.WordBytes
	need := (h.next - HeapBase) / ir.WordBytes
	if old := int64(len(h.words)); old < need {
		if need <= int64(cap(h.words)) {
			// Reset keeps capacity, so re-extended cells hold stale values
			// from the previous run and must be re-zeroed.
			h.words = h.words[:need]
			clear(h.words[old:])
		} else {
			newCap := 2 * int64(cap(h.words))
			if newCap < need {
				newCap = need
			}
			grown := make([]int64, need, newCap)
			copy(grown, h.words)
			h.words = grown
		}
	}
	return addr
}

// AllocObject allocates an object of the given class: header word holding
// the class ID, then its fields, zeroed.
func (h *Heap) AllocObject(c *ir.Class) int64 {
	n := int64(c.SizeBytes) / ir.WordBytes
	if int64(c.SizeBytes)%ir.WordBytes != 0 {
		n++
	}
	addr := h.AllocWords(n)
	h.store(addr, int64(c.ID))
	return addr
}

// AllocArray allocates an array of length words: the length slot at offset
// zero, then the elements.
func (h *Heap) AllocArray(length int64) int64 {
	addr := h.AllocWords(length + 1)
	h.store(addr, length)
	return addr
}

// AllocException allocates an exception object for kind k.
func (h *Heap) AllocException(k ExcKind) int64 {
	addr := h.AllocWords(2)
	h.store(addr, excClassBase+int64(k))
	return addr
}

// ExcKindOf returns the exception kind of the object at ref, or ExcNone.
func (h *Heap) ExcKindOf(ref int64) ExcKind {
	if ref < HeapBase {
		return ExcNone
	}
	hdr, ok := h.Peek(ref)
	if !ok || hdr < excClassBase {
		return ExcNone
	}
	return ExcKind(hdr - excClassBase)
}

// ClassIDOf returns the header word of the object at ref.
func (h *Heap) ClassIDOf(ref int64) int64 {
	v, _ := h.Peek(ref)
	return v
}

// Peek reads a heap word without access semantics (for inspection only).
func (h *Heap) Peek(addr int64) (int64, bool) {
	i := (addr - HeapBase) / ir.WordBytes
	if addr < HeapBase || i >= int64(len(h.words)) {
		return 0, false
	}
	return h.words[i], true
}

// store writes a heap word, ignoring out-of-range addresses (the caller has
// validated allocation).
func (h *Heap) store(addr, v int64) {
	i := (addr - HeapBase) / ir.WordBytes
	if addr >= HeapBase && i < int64(len(h.words)) {
		h.words[i] = v
	}
}

// AccessResult describes the outcome of a memory access.
type AccessResult int

const (
	// AccessOK: the access hit live heap.
	AccessOK AccessResult = iota
	// AccessTrapCandidate: the address lies in the protected area; whether
	// the machine turns it into a trap depends on the model.
	AccessTrapCandidate
	// AccessGarbage: the address lies in the unprotected gap or past the
	// heap: reads yield zero, writes vanish, no trap ever fires.
	AccessGarbage
)

// Classify reports what region an access to addr touches given the
// protected-area size.
func (h *Heap) Classify(addr, trapArea int64) AccessResult {
	switch {
	case addr >= 0 && addr < trapArea:
		return AccessTrapCandidate
	case addr >= HeapBase && (addr-HeapBase)/ir.WordBytes < int64(len(h.words)):
		return AccessOK
	default:
		return AccessGarbage
	}
}

// Load reads the word at addr assuming Classify returned AccessOK.
func (h *Heap) Load(addr int64) int64 {
	return h.words[(addr-HeapBase)/ir.WordBytes]
}

// Store writes the word at addr assuming Classify returned AccessOK.
func (h *Heap) Store(addr, v int64) {
	h.words[(addr-HeapBase)/ir.WordBytes] = v
}

// LiveWords returns the number of allocated words (for stats).
func (h *Heap) LiveWords() int { return len(h.words) }
