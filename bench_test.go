package trapnull

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each benchmark regenerates its artifact from the simulated machines
// at the quick problem sizes and reports the headline metric the paper
// draws from it, so `go test -bench=.` doubles as a shape regression suite.
//
// Full-size runs (the numbers recorded in EXPERIMENTS.md) come from
// `go run ./cmd/benchtab -all`.

import (
	"sync"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/bench"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/workloads"
)

var (
	reportOnce sync.Once
	report     *bench.Report
	reportErr  error
)

// sharedReport runs the full sweep once per process; individual benchmarks
// re-render their artifact from it per iteration, so the per-table benches
// measure artifact generation while the metrics come from real runs.
func sharedReport(b *testing.B) *bench.Report {
	b.Helper()
	reportOnce.Do(func() {
		report, reportErr = bench.RunAll(bench.Options{Quick: true})
	})
	if reportErr != nil {
		b.Fatalf("bench sweep failed: %v", reportErr)
	}
	return report
}

// improvementOf recomputes a cycle-level improvement percentage.
func improvementOf(m *bench.Matrix, base, cfg, workload string) float64 {
	bc := m.Cell(base, workload)
	cc := m.Cell(cfg, workload)
	return (float64(bc.Cycles)/float64(cc.Cycles) - 1) * 100
}

func BenchmarkTable1JBYTEmark(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(improvementOf(r.WinJB, "NoNullOpt(NoTrap)", "NewNullCheck(Phase1+2)", "Assignment"),
		"assignment_gain_%")
}

func BenchmarkFigure8Improvement(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure8()) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(improvementOf(r.WinJB, "NoNullOpt(NoTrap)", "NewNullCheck(Phase1+2)", "LUDecomposition"),
		"lu_gain_%")
}

func BenchmarkTable2SPECjvm98(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table2()) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(r.WinSpec.Cell("NewNullCheck(Phase1+2)", "MTRT").SimMillis(), "mtrt_sim_ms")
}

func BenchmarkFigure9Improvement(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure9()) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(improvementOf(r.WinSpec, "NewNullCheck(Phase1)", "NewNullCheck(Phase1+2)", "MTRT"),
		"mtrt_phase2_gain_%")
}

func BenchmarkFigure10VsHotSpotJB(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure10()) == 0 {
			b.Fatal("empty figure")
		}
	}
	sum := 0.0
	for _, w := range r.WinJB.Workloads {
		sum += improvementOf(r.WinJB, "HotSpotSim", "NewNullCheck(Phase1+2)", w.Name)
	}
	b.ReportMetric(sum/float64(len(r.WinJB.Workloads)), "avg_vs_hotspot_%")
}

func BenchmarkFigure11VsHotSpotSpec(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure11()) == 0 {
			b.Fatal("empty figure")
		}
	}
	sum := 0.0
	for _, w := range r.WinSpec.Workloads {
		sum += improvementOf(r.WinSpec, "HotSpotSim", "NewNullCheck(Phase1+2)", w.Name)
	}
	b.ReportMetric(sum/float64(len(r.WinSpec.Workloads)), "avg_vs_hotspot_%")
}

func BenchmarkTable3CompilationTime(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
	c := r.WinSpec.Cell("NewNullCheck(Phase1+2)", "Javac")
	b.ReportMetric(float64(c.CompileTotal().Microseconds())/1000, "javac_compile_ms")
}

func BenchmarkFigure12CompileRatio(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure12()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table4()) == 0 {
			b.Fatal("empty table")
		}
	}
	newC := r.WinSpec.Cell("NewNullCheck(Phase1+2)", "MTRT")
	oldC := r.WinSpec.Cell("OldNullCheck", "MTRT")
	if o := oldC.CompileNull.Seconds(); o > 0 {
		b.ReportMetric(newC.CompileNull.Seconds()/o, "mtrt_new_vs_old_nullopt_x")
	}
}

func BenchmarkFigure13BreakdownChart(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure13()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable5CompileIncrease(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table5()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable6AIXJBYTEmark(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table6()) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(improvementOf(r.AIXJB, "NoSpeculation", "Speculation", "FPEmulation"),
		"fpemu_speculation_gain_%")
}

func BenchmarkFigure14AIXImprovement(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure14()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable7AIXSpec(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Table7()) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(improvementOf(r.AIXSpec, "NoNullCheckOpt", "Speculation", "MTRT"),
		"mtrt_gain_%")
}

func BenchmarkFigure15AIXSpecImprovement(b *testing.B) {
	r := sharedReport(b)
	for i := 0; i < b.N; i++ {
		if len(r.Figure15()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkEndToEndSweep measures the complete quick sweep — every workload
// under every configuration on both machines — the "how expensive is the
// whole experiment" number.
func BenchmarkEndToEndSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAll(bench.Options{Quick: true, CompileReps: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

// BenchmarkExec measures pure execution (no compilation) of every workload
// under the Phase1+2 pipeline on ia32, per engine: the closure-compiled
// engine versus the reference switch interpreter on identical IR. Each
// iteration resets the heap and re-verifies the checksum, so the numbers can
// never come from a wrong-answer fast path.
func BenchmarkExec(b *testing.B) {
	for _, w := range append(workloads.JBYTEmark(), workloads.SPECjvm98()...) {
		for _, eng := range []machine.Engine{machine.EngineClosure, machine.EngineSwitch} {
			w, eng := w, eng
			b.Run(w.Name+"/"+eng.String(), func(b *testing.B) {
				model := arch.IA32Win()
				p, entryM := w.Build()
				if _, err := jit.CompileProgram(p, jit.ConfigPhase1Phase2(), model); err != nil {
					b.Fatal(err)
				}
				m := machine.New(model, p)
				m.Engine = eng
				want := w.Ref(w.TestN)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Heap.Reset()
					out, err := m.Call(entryM.Fn, w.TestN)
					if err != nil {
						b.Fatal(err)
					}
					if out.Value != want {
						b.Fatalf("checksum mismatch: got %d, want %d", out.Value, want)
					}
				}
			})
		}
	}
}
