package trapnull

// Micro-benchmarks pinning the worklist solver and the parallel harness.
// BenchmarkSolve exercises the generic data-flow engine in all four
// (direction × meet) shapes over a large randomly generated CFG;
// BenchmarkFullTableRun measures the whole table/figure sweep at several
// worker counts. Before/after numbers are recorded in CHANGES.md.

import (
	"fmt"
	"testing"

	"trapnull/internal/bench"
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
	"trapnull/internal/randprog"
)

// solveBenchFunc generates a large random function (hundreds of blocks once
// the structured generator nests to depth 6) for solver benchmarking.
func solveBenchFunc(b *testing.B) *ir.Func {
	b.Helper()
	cfg := randprog.Config{
		Seed:      29, // ~2200 blocks, ~2600 locals at this depth
		MaxDepth:  8,
		MaxStmts:  14,
		AllowNull: true,
		AllowTry:  true,
		AllowOOB:  true,
	}
	_, fn := randprog.Generate(cfg)
	fn.RecomputeEdges()
	return fn
}

// useDefScan is a liveness-shaped block summary (gen = upward-exposed uses,
// kill = definitions); it exercises the solver identically in every
// direction/meet combination.
func useDefScan(size int) func(b *ir.Block) (*bitset.Set, *bitset.Set) {
	return func(blk *ir.Block) (*bitset.Set, *bitset.Set) {
		use := bitset.New(size)
		def := bitset.New(size)
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				if a.IsVar() && !def.Has(int(a.Var)) {
					use.Add(int(a.Var))
				}
			}
			if in.HasDst() && !use.Has(int(in.Dst)) {
				def.Add(int(in.Dst))
			}
		}
		return use, def
	}
}

func BenchmarkSolve(b *testing.B) {
	fn := solveBenchFunc(b)
	size := fn.NumLocals()
	b.Logf("cfg: %d blocks, %d instrs, %d locals", len(fn.Blocks), fn.NumInstrs(), size)
	cases := []struct {
		name string
		dir  dataflow.Direction
		meet dataflow.Meet
	}{
		{"Forward/Intersect", dataflow.Forward, dataflow.Intersect},
		{"Forward/Union", dataflow.Forward, dataflow.Union},
		{"Backward/Intersect", dataflow.Backward, dataflow.Intersect},
		{"Backward/Union", dataflow.Backward, dataflow.Union},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen, kill := dataflow.GenKill(useDefScan(size))
				dataflow.Solve(fn, &dataflow.Problem{
					Dir:  tc.dir,
					Meet: tc.meet,
					Size: size,
					Gen:  gen,
					Kill: kill,
				})
			}
		})
	}
}

// BenchmarkFullTableRun measures the whole experiment sweep (every table and
// figure input) end to end at several worker counts. On multi-core hosts the
// parallel variants should approach linear scaling; the rendered output is
// byte-identical at every worker count (see bench.TestParallelSweepDeterminism).
func BenchmarkFullTableRun(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunAll(bench.Options{Quick: true, CompileReps: 1, Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
