module trapnull

go 1.22
