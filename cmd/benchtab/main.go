// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§5) from the simulated machines.
//
// Usage:
//
//	benchtab -all                 # every table and figure
//	benchtab -table 1             # just Table 1
//	benchtab -figure 8            # just Figure 8
//	benchtab -quick               # small problem sizes (fast smoke run)
//	benchtab -reps 9              # compile-time measurement repetitions
//	benchtab -parallel 8          # sweep cells on 8 workers (0 = GOMAXPROCS)
//	benchtab -compile-cache=off   # disable the content-addressed compile cache
//	benchtab -compile-parallel 4  # compile each cell's methods on 4 workers
//	benchtab -engine switch       # run on the reference switch interpreter
//	benchtab -tier                # tiered-execution tables (policies, not configs)
//	benchtab -tier-reps 6         # invocations per tiered cell (last = steady state)
//	benchtab -degradation         # trap-storm governor degradation tables
//	benchtab -chaos -chaos-seed 7 # deterministic seeded fault-injection sweep
//	benchtab -cell-timeout 30s    # per-cell wall-clock deadline -> ERROR(timeout)
//	benchtab -trace out.json      # Chrome trace of the sweep (Perfetto-viewable)
//	benchtab -timeline -          # adaptive-decision timeline + trap-cost attribution (- = stdout)
//	benchtab -metrics -           # deterministic telemetry metrics snapshot (- = stdout)
//	benchtab -metrics-volatile    # include host-timing metrics in the snapshot
//	benchtab -remarks             # per-config null check fate histograms
//	benchtab -profile             # hot-block execution profile per cell
//	benchtab -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"trapnull/internal/bench"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
)

func main() {
	var (
		all        = flag.Bool("all", false, "render every table and figure")
		table      = flag.Int("table", 0, "render one table (1-7)")
		figure     = flag.Int("figure", 0, "render one figure (8-15)")
		quick      = flag.Bool("quick", false, "use small problem sizes")
		reps       = flag.Int("reps", 5, "compile-time measurement repetitions (ignored when the compile cache is on)")
		parallel   = flag.Int("parallel", 0, "concurrent sweep cells (0 = GOMAXPROCS, 1 = serial)")
		ccache     = flag.String("compile-cache", "auto", "content-addressed compile cache: auto (TRAPNULL_COMPILE_CACHE), on, off")
		cparallel  = flag.Int("compile-parallel", 0, "per-method compile workers inside each cell (<=1 = serial)")
		engine     = flag.String("engine", "", "execution engine: closure (default) or switch; both report identical numbers")
		ablations  = flag.Bool("ablations", false, "run the ablation experiments instead")
		tier       = flag.Bool("tier", false, "run the tiered-execution sweep instead (steady-state cycles and compile-time-to-peak per policy)")
		tierReps   = flag.Int("tier-reps", 0, "invocations per tiered cell (0 = default; the last is the steady-state measurement)")
		degrade    = flag.Bool("degradation", false, "run the trap-storm degradation sweep instead (implicit vs explicit vs governed per model)")
		degReps    = flag.Int("degradation-reps", 0, "invocations per degradation cell (0 = default 3; the last is the steady-state measurement)")
		chaos      = flag.Bool("chaos", false, "run the seeded fault-injection sweep instead; fails only on non-injected errors")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed of the -chaos fault schedule (same seed = byte-identical report)")
		cellTO     = flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline for the main sweep (0 = none; expired cells render ERROR(timeout))")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the sweep to this file")
		timelineTo = flag.String("timeline", "", "write the adaptive-decision timeline (flight recorder + trap-cost attribution) to this file, or - for stdout")
		metricsTo  = flag.String("metrics", "", "write the telemetry metrics snapshot to this file, or - for stdout")
		metricsVol = flag.Bool("metrics-volatile", false, "include volatile (host-timing/interleaving) metrics in the -metrics snapshot")
		remarks    = flag.Bool("remarks", false, "collect null-check fate remarks (adds fate histograms to tables/JSON)")
		profile    = flag.Bool("profile", false, "profile execution (adds hot-block summaries to tables/JSON)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// The simulated measurements are engine-independent by construction; the
	// flag only picks which engine's host speed the sweep runs at (and lets
	// the CI gate re-run tables on the reference interpreter). An empty flag
	// leaves the TRAPNULL_ENGINE-derived default alone.
	if *engine != "" {
		e, err := machine.EngineByName(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(2)
		}
		machine.DefaultEngine = e
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			}
		}()
	}

	// The telemetry plane (shared by every mode): a timeline collecting each
	// cell's flight-recorder events and trap-cost ledgers, and a metrics
	// registry totalling the sweep counters. Both render deterministically.
	var timeline *obs.Timeline
	if *timelineTo != "" {
		timeline = obs.NewTimeline()
	}
	var metrics *obs.Registry
	if *metricsTo != "" {
		metrics = obs.NewRegistry()
	}
	emitTelemetry := func() {
		if timeline != nil {
			writeOut(*timelineTo, timeline.Render())
		}
		if metrics != nil {
			writeOut(*metricsTo, metrics.RenderText(*metricsVol))
		}
	}

	if *tier {
		var tr *obs.Trace
		if *traceOut != "" {
			tr = obs.NewTrace()
		}
		trep, sweepErr := bench.RunTieredAll(bench.TierOptions{
			Quick: *quick, Reps: *tierReps, CompileParallelism: *cparallel,
			Timeline: timeline, Trace: tr, Metrics: metrics})
		if tr != nil {
			if err := tr.WriteFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
		}
		if *asJSON {
			data, err := trep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		} else {
			fmt.Print(trep.Render())
		}
		emitTelemetry()
		failOn(sweepErr)
		return
	}

	if *degrade {
		drep, sweepErr := bench.RunDegradationAll(bench.DegradationOptions{
			Quick: *quick, Reps: *degReps, CompileParallelism: *cparallel,
			Timeline: timeline, Metrics: metrics})
		if *asJSON {
			data, err := drep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		} else {
			fmt.Print(drep.Render())
		}
		emitTelemetry()
		failOn(sweepErr)
		return
	}

	if *chaos {
		// Injected faults are the point of the sweep: they render as
		// deterministic ERROR(...) cells inside the report. Only a fault the
		// schedule did not arm fails the run.
		crep, chaosErr := bench.RunChaos(*chaosSeed, bench.ChaosOptions{
			Parallelism: *parallel, CellTimeout: *cellTO, CompileParallelism: *cparallel,
			Timeline: timeline, Metrics: metrics})
		fmt.Print(crep.Render())
		emitTelemetry()
		failOn(chaosErr)
		return
	}

	if *ablations {
		out, err := bench.Ablations(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if !*all && *table == 0 && *figure == 0 {
		*all = true
	}

	// A failing cell does not abort the sweep: RunAll always returns the
	// full (possibly partial) report. Render it — failed cells appear as
	// ERROR(<reason>) entries — then report the failures and exit non-zero.
	var cacheSetting bench.CacheSetting
	switch *ccache {
	case "auto":
		cacheSetting = bench.CacheAuto
	case "on":
		cacheSetting = bench.CacheOn
	case "off":
		cacheSetting = bench.CacheOff
	default:
		fmt.Fprintf(os.Stderr, "benchtab: -compile-cache must be auto, on or off (got %q)\n", *ccache)
		os.Exit(2)
	}

	opts := bench.Options{Quick: *quick, CompileReps: *reps, Parallelism: *parallel,
		CompileCache: cacheSetting, CompileParallelism: *cparallel,
		Remarks: *remarks, Profile: *profile, CellTimeout: *cellTO,
		Timeline: timeline, Metrics: metrics}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		opts.Trace = tr
	}
	rep, sweepErr := bench.RunAll(opts)

	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
	}

	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		emitTelemetry()
		failOn(sweepErr)
		return
	}

	arts := rep.Artifacts()
	emit := func(name string) {
		fn, ok := arts[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown artifact %q\n", name)
			os.Exit(1)
		}
		fmt.Println(fn())
	}

	switch {
	case *all:
		for _, name := range bench.ArtifactNames() {
			emit(name)
		}
	case *table != 0:
		emit(fmt.Sprintf("table%d", *table))
	case *figure != 0:
		emit(fmt.Sprintf("figure%d", *figure))
	}
	if *remarks {
		fmt.Print(rep.FateTables())
	}
	if *profile {
		fmt.Print(rep.ProfileTables())
	}
	emitTelemetry()
	failOn(sweepErr)
}

// writeOut writes a telemetry rendering to a file, or stdout for "-".
func writeOut(path, content string) {
	if path == "-" {
		fmt.Print(content)
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
}

// failOn reports a sweep failure after the (partial) results have been
// rendered, identifying every failing cell, and exits non-zero.
func failOn(err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
	os.Exit(1)
}
