// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§5) from the simulated machines.
//
// Usage:
//
//	benchtab -all                 # every table and figure
//	benchtab -table 1             # just Table 1
//	benchtab -figure 8            # just Figure 8
//	benchtab -quick               # small problem sizes (fast smoke run)
//	benchtab -reps 9              # compile-time measurement repetitions
package main

import (
	"flag"
	"fmt"
	"os"

	"trapnull/internal/bench"
)

func main() {
	var (
		all       = flag.Bool("all", false, "render every table and figure")
		table     = flag.Int("table", 0, "render one table (1-7)")
		figure    = flag.Int("figure", 0, "render one figure (8-15)")
		quick     = flag.Bool("quick", false, "use small problem sizes")
		reps      = flag.Int("reps", 5, "compile-time measurement repetitions")
		ablations = flag.Bool("ablations", false, "run the ablation experiments instead")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON")
	)
	flag.Parse()

	if *ablations {
		out, err := bench.Ablations(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if !*all && *table == 0 && *figure == 0 {
		*all = true
	}

	rep, err := bench.RunAll(bench.Options{Quick: *quick, CompileReps: *reps})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	arts := rep.Artifacts()
	emit := func(name string) {
		fn, ok := arts[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown artifact %q\n", name)
			os.Exit(1)
		}
		fmt.Println(fn())
	}

	switch {
	case *all:
		for _, name := range bench.ArtifactNames() {
			emit(name)
		}
	case *table != 0:
		emit(fmt.Sprintf("table%d", *table))
	case *figure != 0:
		emit(fmt.Sprintf("figure%d", *figure))
	}
}
