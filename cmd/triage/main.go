// Command triage bisects and minimizes a miscompilation: given a random
// program seed (or a seed range to scan), a configuration and an
// architecture, it checks the optimized program against the interpreted
// baseline, names the first pipeline pass whose output diverges, delta-debugs
// the program to a minimal entry function, and prints the reproducer as jasm
// together with a ready-to-paste Go regression test.
//
// Usage:
//
//	triage -seed 1643 -config "NewNullCheck(Phase1+2)" -arch ia32 -inject-bug
//	triage -scan 2000 -config "NewNullCheck(Phase1+2)" -arch ia32 -inject-bug
//	triage -list-configs
//
// -inject-bug plants the any-path substitution miscompile into phase 2
// (nullcheck.Phase2UnsafeSubst) so the triage machinery can be demonstrated
// on a healthy tree. Exit status: 0 when the case behaves, 1 when a
// divergence was found and triaged, 2 on usage or internal errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/randprog"
	"trapnull/internal/triage"
)

func configs() []jit.Config {
	var out []jit.Config
	seen := map[string]bool{}
	for _, c := range append(jit.WindowsConfigs(), jit.AIXConfigs()...) {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c)
		}
	}
	return out
}

func configByName(name string) (jit.Config, bool) {
	for _, c := range configs() {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return jit.Config{}, false
}

func main() {
	var (
		seed        = flag.Int64("seed", 0, "random program seed to triage")
		scan        = flag.Int64("scan", 0, "scan seeds 0..N-1 and triage the first divergence")
		configName  = flag.String("config", "NewNullCheck(Phase1+2)", "configuration name (see -list-configs)")
		archName    = flag.String("arch", "ia32", "architecture model: ia32, aix, sparc")
		inject      = flag.Bool("inject-bug", false, "plant the any-path substitution miscompile into phase 2")
		inputs      = flag.String("inputs", "0,1,5,7,-3", "comma-separated entry inputs to try")
		listConfigs = flag.Bool("list-configs", false, "list configuration names and exit")
	)
	flag.Parse()

	if *listConfigs {
		for _, c := range configs() {
			fmt.Println(c.Name)
		}
		return
	}

	model, err := arch.ByName(*archName)
	if err != nil {
		fail(2, "%v", err)
	}
	cfg, ok := configByName(*configName)
	if !ok {
		fail(2, "unknown config %q (try -list-configs)", *configName)
	}
	cfg.InjectUnsafeSubstitution = *inject

	var ins []int64
	for _, s := range strings.Split(*inputs, ",") {
		var n int64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			fail(2, "bad input %q", s)
		}
		ins = append(ins, n)
	}

	caseFor := func(seed int64) triage.Case {
		return triage.Case{
			Gen: func() (*ir.Program, *ir.Func) {
				return randprog.Generate(randprog.DefaultConfig(seed))
			},
			Config: cfg,
			Model:  model,
			Inputs: ins,
		}
	}

	c := caseFor(*seed)
	chosen := *seed
	if *scan > 0 {
		found := false
		for s := int64(0); s < *scan; s++ {
			div, err := triage.Check(caseFor(s))
			if err != nil {
				fail(2, "seed %d: %v", s, err)
			}
			if div != nil {
				fmt.Printf("seed %d diverges: %v\n", s, div)
				c, chosen, found = caseFor(s), s, true
				break
			}
		}
		if !found {
			fmt.Printf("no divergence in seeds 0..%d (%s on %s)\n", *scan-1, cfg.Name, model.Name)
			return
		}
	}

	rep, err := triage.Run(c)
	if err != nil {
		fail(2, "triage: %v", err)
	}
	if rep.Divergence == nil {
		fmt.Printf("seed %d behaves under %s on %s (inputs %v)\n", chosen, cfg.Name, model.Name, ins)
		return
	}

	fmt.Printf("seed %d, config %s, arch %s\n", chosen, cfg.Name, model.Name)
	fmt.Printf("divergence:       %v\n", rep.Divergence)
	fmt.Printf("first bad pass:   %s (compiling %s)\n", rep.Pass, rep.Method)
	fmt.Printf("minimal entry:    %d instructions\n", rep.MinimalInstrs)
	if len(rep.PassTimes) > 0 {
		fmt.Printf("\n--- pass timings up to the guilty pass (observed recompilation) ---\n")
		for _, pt := range rep.PassTimes {
			fmt.Printf("%-28s %-24s %v\n", pt.Method, pt.Pass, pt.Elapsed.Round(time.Microsecond))
		}
	}
	fmt.Printf("\n--- IR after %s on %s ---\n%s", rep.Pass, rep.Method, rep.SnapshotIR)
	fmt.Printf("\n--- minimized reproducer (jasm) ---\n%s", rep.Reproducer)
	fmt.Printf("\n--- regression test ---\n%s", rep.RegressionTest)
	os.Exit(1)
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "triage: "+format+"\n", args...)
	os.Exit(code)
}
