// Command nulljit compiles and runs one workload under one JIT
// configuration, printing the optimized IR of the entry function, the
// compile-side statistics, and the simulated execution profile. It is the
// inspection tool for understanding what each configuration did to a
// program.
//
// Usage:
//
//	nulljit -workload Assignment -config full -arch ia32 -print
//	nulljit -trace out.json       # Chrome trace of compile passes + execution
//	nulljit -remarks              # per-method null check fate ledger
//	nulljit -profile              # hot-block execution profile
//	nulljit -tier -tier-reps 4    # tiered adaptive execution with event log
//	nulljit -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/codegen"
	"trapnull/internal/ir"
	"trapnull/internal/jasm"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

func configByName(name string) (jit.Config, error) {
	all := append(jit.WindowsConfigs(), jit.AIXConfigs()...)
	all = append(all, jit.ConfigAIXWriteImplicit())
	short := map[string]string{
		"notrap":    "NoNullOpt(NoTrap)",
		"trap":      "NoNullOpt(Trap)",
		"old":       "OldNullCheck",
		"phase1":    "NewNullCheck(Phase1)",
		"full":      "NewNullCheck(Phase1+2)",
		"hotspot":   "HotSpotSim",
		"spec":      "Speculation",
		"nospec":    "NoSpeculation",
		"aixbase":   "NoNullCheckOpt",
		"illegal":   "IllegalImplicit(NoSpec)",
		"writeimpl": "WriteImplicit(Spec)",
	}
	if long, ok := short[strings.ToLower(name)]; ok {
		name = long
	}
	for _, c := range all {
		if c.Name == name {
			return c, nil
		}
	}
	names := make([]string, 0, len(short))
	for k := range short {
		names = append(names, k)
	}
	return jit.Config{}, fmt.Errorf("unknown config %q (try one of %s)", name, strings.Join(names, ", "))
}

func main() {
	var (
		file   = flag.String("file", "", "run a .jasm program instead of a workload (entry func: main)")
		wname  = flag.String("workload", "Assignment", "workload name (see -list)")
		cname  = flag.String("config", "full", "configuration (notrap|trap|old|phase1|full|hotspot|spec|nospec|aixbase|illegal)")
		aname  = flag.String("arch", "ia32", "architecture model (ia32|aix|sparc)")
		n      = flag.Int64("n", 0, "problem size (0 = workload default)")
		pr     = flag.Bool("print", false, "print the optimized entry function IR")
		asm    = flag.Bool("asm", false, "print the lowered machine listing with cycle costs")
		dump   = flag.Bool("dump", false, "print the whole optimized program as jasm source")
		list   = flag.Bool("list", false, "list workloads and exit")
		before = flag.Bool("print-before", false, "print the unoptimized entry function IR")
		prof   = flag.String("cpuprofile", "", "write a CPU profile of compile+run to this file")

		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON (pass spans + execution) to this file")
		remarks  = flag.Bool("remarks", false, "print the per-method null check fate ledger")
		profile  = flag.Bool("profile", false, "print the hot-block execution profile")
		timeline = flag.Bool("timeline", false, "print the adaptive-decision timeline and per-trap-site cycle attribution")
		metrics  = flag.Bool("metrics", false, "print the deterministic telemetry metrics snapshot")
		tier     = flag.Bool("tier", false, "run tiered adaptive execution (interpreter -> closure -> speculative) and print the promotion/deopt event log")
		tierReps = flag.Int("tier-reps", 4, "invocations of the tiered run; the last is steady state")
	)
	flag.Parse()

	if *prof != "" {
		f, err := os.Create(*prof)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-20s %-10s N=%d\n", w.Name, w.Suite, w.N)
		}
		return
	}

	cfg, err := configByName(*cname)
	fail(err)
	model, err := arch.ByName(*aname)
	fail(err)

	if *tier {
		if *file != "" {
			fail(fmt.Errorf("-tier needs a rebuildable program; use -workload, not -file"))
		}
		runTiered(*wname, cfg, model, *n, *tierReps, *timeline)
		return
	}

	var prog *ir.Program
	var entryFn *ir.Func
	var ref func(int64) int64
	size := *n

	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		parsed, funcs, err := jasm.Parse(string(src))
		fail(err)
		if funcs["main"] == nil {
			fail(fmt.Errorf("%s defines no func main", *file))
		}
		prog = parsed
		entryFn = funcs["main"]
	} else {
		w, err := workloads.ByName(*wname)
		fail(err)
		if size == 0 {
			size = w.N
		}
		p, entryM := w.Build()
		prog = p
		entryFn = entryM.Fn
		ref = w.Ref
	}
	if *before {
		fmt.Println("=== before optimization ===")
		fmt.Print(entryFn.String())
	}

	// Observability: build an Observer only when a -trace/-remarks/-profile
	// flag asks for one, so the default path stays the unobserved compile.
	var tr *obs.Trace
	var rem *obs.Remarks
	var ob *jit.Observer
	if *traceOut != "" {
		tr = obs.NewTrace()
	}
	if *remarks || *profile {
		rem = obs.NewRemarks()
	}
	if tr != nil || rem != nil {
		ob = &jit.Observer{Trace: tr, Remarks: rem}
		if tr != nil {
			ob.TID = tr.NextTID()
		}
	}

	res, err := jit.CompileProgramObserved(prog, cfg, model, ob)
	fail(err)

	if *pr {
		fmt.Println("=== after optimization ===")
		fmt.Print(entryFn.String())
	}
	if *asm {
		fmt.Println("=== lowered listing ===")
		fmt.Print(codegen.Lower(entryFn, model).String())
	}
	if *dump {
		fmt.Print(jasm.Format(prog))
	}

	label := *wname
	if *file != "" {
		label = *file
	}

	m := machine.New(model, prog)
	var execProf *obs.ExecProfile
	if *profile {
		execProf = obs.NewExecProfile()
		m.Profile = execProf
	}
	var rec *obs.Recorder
	if *timeline {
		rec = obs.NewRecorder(0)
		m.Recorder = rec
		m.EnableAttribution()
	}
	var out machine.Outcome
	execStart := time.Now()
	if entryFn.NumParams > 0 {
		out, err = m.Call(entryFn, size)
	} else {
		out, err = m.Call(entryFn)
	}
	if tr != nil {
		tr.Span(ob.TID, "exec", "run "+label, execStart, time.Since(execStart),
			map[string]any{"cycles": m.Cycles, "instrs": m.Stats.Instrs})
		fail(tr.WriteFile(*traceOut))
		fmt.Fprintf(os.Stderr, "nulljit: wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
	}
	fail(err)

	fmt.Printf("program     %s (n=%d) on %s under %s\n", label, size, model.Name, cfg.Name)
	if out.Exc != rt.ExcNone {
		fmt.Printf("exception   %v\n", out.Exc)
	} else if ref != nil {
		want := ref(size)
		status := "OK"
		if out.Value != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("checksum    %d  [%s]\n", out.Value, status)
	} else {
		fmt.Printf("result      %d\n", out.Value)
	}
	fmt.Printf("cycles      %d  (%.3f sim ms at %d MHz)\n",
		m.Cycles, float64(m.Cycles)/float64(model.ClockHz)*1000, model.ClockHz/1_000_000)
	fmt.Printf("compile     nullcheck-opt %v, other %v\n", res.Times.NullCheckOpt, res.Times.Other)
	fmt.Printf("static      eliminated=%d inserted=%d implicit=%d explicit-left=%d\n",
		res.Checks.Eliminated, res.Checks.Inserted, res.Checks.Implicit, res.Checks.ExplicitRemaining)
	fmt.Printf("inline      devirtualized=%d inlined=%d intrinsified=%d\n",
		res.Inline.Devirtualized, res.Inline.Inlined, res.Inline.Intrinsified)
	fmt.Printf("scalar      cse=%d hoisted=%d promoted=%d speculated=%d boundchecks-removed=%d\n",
		res.Scalar.CSE, res.Scalar.Hoisted, res.Scalar.Promoted, res.Scalar.Speculated, res.BoundChecksRemoved)
	fmt.Printf("dynamic     instrs=%d explicit-checks=%d implicit-sites=%d boundchecks=%d loads=%d stores=%d calls=%d traps=%d\n",
		m.Stats.Instrs, m.Stats.ExplicitChecks, m.Stats.ImplicitSites, m.Stats.BoundChecks,
		m.Stats.Loads, m.Stats.Stores, m.Stats.Calls, m.Stats.TrapsTaken)

	if *remarks {
		var sb strings.Builder
		rem.Render(&sb)
		fmt.Print(sb.String())
		if t := rem.Totals(); !t.Conserved() || rem.Conflicts() > 0 {
			fail(fmt.Errorf("fate conservation violated: tracked=%d fated=%d lost=%d conflicts=%d",
				t.Tracked(), t.Fated(), t.Lost, rem.Conflicts()))
		}
	}
	if *profile {
		sum := execProf.Summary(10, rem, m.Stats.TrapsTaken, m.Stats.ExplicitChecks, m.Stats.ImplicitSites)
		var sb strings.Builder
		sum.Render(&sb)
		fmt.Print(sb.String())
	}
	if *timeline {
		tl := obs.NewTimeline()
		tl.Add(label, rec, m.CycleAttribution())
		fmt.Print(tl.Render())
	}
	if *metrics {
		fmt.Print(runMetrics(m, res).RenderText(false))
	}
}

// runMetrics builds the single-run metrics snapshot: the engine's dynamic
// counters, the compilation's static check statistics, and — when the
// machine carried attribution — the four-bucket cycle ledger.
func runMetrics(m *machine.Machine, res *jit.Result) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("engine.instrs", "dynamic instructions executed").Add(m.Stats.Instrs)
	reg.Counter("engine.explicit_checks", "explicit null check instructions executed").Add(m.Stats.ExplicitChecks)
	reg.Counter("engine.implicit_sites", "dereferences executed at implicit-check sites").Add(m.Stats.ImplicitSites)
	reg.Counter("engine.bound_checks", "dynamic array bound checks").Add(m.Stats.BoundChecks)
	reg.Counter("engine.loads", "dynamic loads").Add(m.Stats.Loads)
	reg.Counter("engine.stores", "dynamic stores").Add(m.Stats.Stores)
	reg.Counter("engine.calls", "dynamic calls").Add(m.Stats.Calls)
	reg.Counter("engine.traps_taken", "hardware traps that became NPEs").Add(m.Stats.TrapsTaken)
	reg.Counter("engine.thrown_software", "exceptions raised by explicit checks").Add(m.Stats.ThrownSoftware)
	reg.Counter("engine.cycles", "simulated cycles").Add(m.Cycles)
	reg.Counter("static.implicit", "checks compiled to implicit trap sites").Add(int64(res.Checks.Implicit))
	reg.Counter("static.explicit_left", "explicit checks surviving compilation").Add(int64(res.Checks.ExplicitRemaining))
	reg.Counter("static.eliminated", "checks eliminated at compile time").Add(int64(res.Checks.Eliminated))
	if a := m.CycleAttribution(); a != nil {
		reg.Counter("attr.implicit_cycles", "cycles attributed to implicit-check sites").Add(a.ImplicitCycles)
		reg.Counter("attr.explicit_cycles", "cycles attributed to explicit checks").Add(a.ExplicitCycles)
		reg.Counter("attr.trap_cycles", "cycles attributed to trap dispatch").Add(a.TrapCycles)
		reg.Counter("attr.guard_free_cycles", "cycles outside any null-check machinery").Add(a.GuardFree)
	}
	return reg
}

// runTiered executes one workload on a tiered machine — full ladder, with a
// speculative recompiler wired through a compile cache — and prints the
// per-invocation cycle deltas, the promotion/deopt event log, and the
// speculation blacklist. The checksum is verified on every invocation.
func runTiered(wname string, cfg jit.Config, model *arch.Model, n int64, reps int, timeline bool) {
	w, err := workloads.ByName(wname)
	fail(err)
	size := n
	if size == 0 {
		size = w.N
	}
	if reps < 1 {
		reps = 1
	}

	cache := jit.NewCache(0)
	compile := func(mask map[string][]int) (*ir.Program, error) {
		p, _ := w.Build()
		spec := jit.SpecSet(mask)
		key := jit.KeySpec(p, cfg, model, spec)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model, jit.CompileOptions{Spec: spec})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry.Program, nil
	}

	prog, err := compile(nil)
	fail(err)
	_, entryM := w.Build()
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		fail(fmt.Errorf("compiled program lacks entry method %s", entryM.QualifiedName()))
	}

	m := machine.New(model, prog)
	var rec *obs.Recorder
	if timeline {
		rec = obs.NewRecorder(0)
		m.Recorder = rec
	}
	m.EnableTiering(machine.DefaultTierPolicy(), compile)

	fmt.Printf("program     %s (n=%d) on %s under %s, tiered (%d invocations)\n",
		w.Name, size, model.Name, cfg.Name, reps)
	want := w.Ref(size)
	for rep := 0; rep < reps; rep++ {
		before := m.Cycles
		out, err := m.Call(em.Fn, size)
		fail(err)
		status := "OK"
		if out.Exc != rt.ExcNone {
			status = fmt.Sprintf("exception %v", out.Exc)
		} else if out.Value != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("invocation  %d: cycles=%d checksum=%d [%s]\n", rep+1, m.Cycles-before, out.Value, status)
	}

	rep := m.TierReport()
	fmt.Printf("tier        deopts=%d spec-live=%d compile-host=%v cache: %+v\n",
		rep.Deopts, rep.SpecLive, rep.CompileHost, cache.Stats())
	for _, ev := range rep.Events {
		switch ev.Kind {
		case "deopt":
			fmt.Printf("event       %-10s %s (check %d)\n", ev.Kind, ev.Method, ev.Check)
		case "promote-t2":
			fmt.Printf("event       %-10s %s (%d checks speculated)\n", ev.Kind, ev.Method, ev.Specs)
		default:
			fmt.Printf("event       %-10s %s\n", ev.Kind, ev.Method)
		}
	}
	for name, ords := range m.Blacklisted() {
		fmt.Printf("blacklist   %s: checks %v\n", name, ords)
	}
	if timeline {
		tl := obs.NewTimeline()
		tl.Add(w.Name+"/tiered", rec, nil)
		fmt.Print(tl.Render())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "nulljit: %v\n", err)
		os.Exit(1)
	}
}
