// Command benchdiff compares two benchtab -json reports benchstat-style and
// exits non-zero when the candidate regresses the baseline. It is the CI
// gate behind BENCH_baseline.json.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -cycles-tol 2 -hit-rate-drop 0 -strict-fates old.json new.json
//
// Gated quantities are simulated and deterministic (cycles, fate histograms,
// cache hit rates); host compile timings are reported but only gated when
// -compile-tol is set. Exit codes: 0 = no regression, 1 = regression,
// 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"trapnull/internal/bench"
)

func main() {
	var (
		cyclesTol   = flag.Float64("cycles-tol", 2.0, "max % increase in a cell's simulated cycles before gating")
		hitRateDrop = flag.Float64("hit-rate-drop", 0.0, "max percentage-point drop in a matrix's cache hit rate before gating")
		compileTol  = flag.Float64("compile-tol", 0.0, "max % increase in per-cell host compile time before gating (0 = report only)")
		strictFates = flag.Bool("strict-fates", false, "gate on any check-fate histogram change")
		quiet       = flag.Bool("quiet", false, "print only notes and regressions, not the per-cell table")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json candidate.json")
		os.Exit(2)
	}

	oldData, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newData, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	d, err := bench.DiffReports(oldData, newData, bench.DiffOptions{
		CyclesTolerancePct:  *cyclesTol,
		HitRateDropPct:      *hitRateDrop,
		CompileTolerancePct: *compileTol,
		StrictFates:         *strictFates,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *quiet {
		d.Lines = nil
	}
	fmt.Print(d.Render())
	if !d.Ok() {
		os.Exit(1)
	}
}
